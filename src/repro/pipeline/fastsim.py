"""Precompute-driven fast scheduler loop (bit-identical to the seed loop).

This is the second tentpole layer of the vectorized-cycle-loop work: a fork
of :meth:`repro.pipeline.core.CoreModel._run` that consumes the per-trace
:class:`~repro.pipeline.precompute.TracePlane` instead of running the
branch unit per µop, and inlines the supported value predictors directly
over their internal table lists using the plane's precomputed hashes —
no per-µop ``Prediction`` objects, no context folding, no memo dicts.

Division of labour with the sequential model:

* Everything that depends only on the in-order stream (branch outcomes,
  folded history, predictor indices/tags, scrambled keys) comes from
  :mod:`repro.pipeline.precompute` — computed once per trace, cached and
  persisted.
* The genuinely sequential dispatch/commit/recovery state machine stays a
  cycle-exact Python loop here (or the optional compiled kernel, see
  :mod:`repro.pipeline.ckernel`), operating **in place** on the model's
  predictor/memory/store-set objects, so post-run predictor state matches
  the sequential model's.

Eligibility is conservative: :func:`try_run` returns ``None`` — and the
caller falls back to the sequential loop — whenever any replaced component
is not in the exact supported configuration (pre-warmed or reconfigured
branch unit, unsupported predictor type, a stage-trace hook).  Supported
results are bit-identical to ``_run`` (pinned by the golden grid run in
both modes and the randomized equivalence tests).

Environment knobs:

* ``REPRO_FAST_SIM=0`` — disable this path entirely (sequential loop).
* ``REPRO_FAST_SIM=require`` — raise :class:`FastPathRequired` instead of
  silently falling back (perf runs that must not quietly degrade).
* ``REPRO_FAST_KERNEL`` — ``0`` forces the pure-Python fast loop; unset /
  ``1`` / ``auto`` additionally tries the compiled kernel for supported
  configurations.
"""

from __future__ import annotations

import os
from collections import deque
from heapq import heappop, heappush, heapreplace

from repro.core.confidence import ConfidencePolicy
from repro.core.vtage import VTAGEPredictor
from repro.isa.uop import OpClass
from repro.pipeline.config import RecoveryMode
from repro.pipeline.precompute import (
    apply_branch_state,
    default_branch_state,
    trace_plane,
    vtage_plane,
)
from repro.pipeline.resources import BandwidthLimiter
from repro.pipeline.result import SimResult
from repro.predictors.lvp import LastValuePredictor
from repro.predictors.oracle import OraclePredictor
from repro.predictors.stride import StridePredictor, TwoDeltaStridePredictor
from repro.util import profiling
from repro.util.bits import MASK64

#: Master switch for the precompute-driven loop (``0`` = sequential model).
FAST_SIM_ENV = "REPRO_FAST_SIM"

#: Compiled-kernel selection: ``0`` = pure Python, else try the C kernel.
FAST_KERNEL_ENV = "REPRO_FAST_KERNEL"

_LOAD = int(OpClass.LOAD)
_STORE = int(OpClass.STORE)
_PRUNE_PERIOD_MASK = 4095
_NEVER = 1 << 62

# Predictor families the fast loop can inline.  Exact-type checks on
# purpose: subclasses (e.g. PerPathStridePredictor under
# TwoDeltaStridePredictor) may override the indexing the plane precomputed.
_P_NONE = 0
_P_ORACLE = 1
_P_LVP = 2
_P_STRIDE = 3
_P_VTAGE = 4


def fast_sim_mode() -> str:
    """The requested fast-path policy: ``"off"`` (``REPRO_FAST_SIM=0``),
    ``"require"`` (fall-backs raise :class:`FastPathRequired` instead of
    silently degrading) or ``"on"`` (fall back quietly, the default)."""
    raw = os.environ.get(FAST_SIM_ENV, "").strip().lower()
    if raw == "0":
        return "off"
    if raw == "require":
        return "require"
    return "on"


def fast_sim_enabled() -> bool:
    return fast_sim_mode() != "off"


class FastPathRequired(RuntimeError):
    """Raised under ``REPRO_FAST_SIM=require`` when a run would silently
    fall back to the sequential model.  The message carries the structured
    fallback reason (the same string :func:`fallback_stats` counts)."""

    def __init__(self, reason: str):
        super().__init__(
            f"REPRO_FAST_SIM=require but the fast path fell back: {reason}")
        self.reason = reason


# Per-process structured fallback counters: reason -> count.  Every run
# that bypasses the fast loop records exactly one reason here; the CLI's
# ``--profile`` output surfaces them so a silently-degraded run is visible
# in the same place its timing is.  Pool-backend workers keep their own
# counters (same per-process scope as the profiling registry).
_FALLBACKS: dict[str, int] = {}
_LAST_FALLBACK: str | None = None


def record_fallback(reason: str) -> None:
    """Count one sequential-model fallback under a structured *reason*."""
    global _LAST_FALLBACK
    _FALLBACKS[reason] = _FALLBACKS.get(reason, 0) + 1
    _LAST_FALLBACK = reason


def fallback_stats() -> dict[str, int]:
    """Reason -> count of fast-path fallbacks in this process."""
    return dict(_FALLBACKS)


def last_fallback() -> str | None:
    """The most recent fallback reason, or ``None``."""
    return _LAST_FALLBACK


def reset_fallback_stats() -> None:
    global _LAST_FALLBACK
    _FALLBACKS.clear()
    _LAST_FALLBACK = None


def fallback_reason(model) -> str | None:
    """Why *model* would bypass the fast loop, or ``None`` when eligible.

    This is the static half of the dispatch decision (predictor family,
    branch-unit state); the dynamic half (``REPRO_FAST_SIM=0``, a
    stage-trace hook) is reported by ``CoreModel.run`` itself.
    """
    if _classify(model.predictor) is None:
        return f"unsupported-predictor:{type(model.predictor).__name__}"
    if not default_branch_state(model):
        return "non-default-branch-state"
    return None


def fast_kernel_enabled() -> bool:
    return os.environ.get(FAST_KERNEL_ENV, "").strip() != "0"


def kernel_mode() -> str:
    """Which loop implementation eligible configs take in this process:
    ``"c"`` (compiled kernel), ``"python"`` (vectorised-precompute fast
    loop), or ``"off"`` (legacy sequential model).  Shown by
    ``--profile`` so a timing report names the path it measured."""
    if not fast_sim_enabled():
        return "off"
    if fast_kernel_enabled():
        from repro.pipeline import ckernel

        if ckernel.kernel_available():
            return "c"
    return "python"


def _classify(predictor) -> int | None:
    """Supported predictor family of *predictor*, or None (fall back)."""
    if predictor is None:
        return _P_NONE
    kind = type(predictor)
    if kind is OraclePredictor:
        return _P_ORACLE
    if kind is LastValuePredictor:
        return _P_LVP
    if kind is StridePredictor or kind is TwoDeltaStridePredictor:
        return _P_STRIDE
    if kind is VTAGEPredictor:
        return _P_VTAGE
    return None


def _conf_threshold(policy: ConfidencePolicy) -> int | None:
    """Saturation threshold when the stock confidence test applies, else
    ``None`` (the policy's own ``is_confident`` is called)."""
    if type(policy).is_confident is ConfidencePolicy.is_confident:
        return policy.max_level
    return None


def try_run(model, trace, warmup: int, workload: str | None) -> SimResult | None:
    """Run *trace* through the fast loop, or return ``None`` to fall back.

    The caller (``CoreModel.run``) owns the gc pause and profiling phase.
    """
    reason = fallback_reason(model)
    if reason is not None:
        record_fallback(reason)
        return None
    ptype = _classify(model.predictor)
    plane = trace_plane(trace)
    vplane = (
        vtage_plane(trace, model.predictor) if ptype == _P_VTAGE else None
    )
    result = None
    if fast_kernel_enabled():
        from repro.pipeline import ckernel

        with profiling.phase("kernel-c"):
            result = ckernel.try_run(
                model, trace, warmup, workload, ptype, plane, vplane
            )
    if result is None:
        with profiling.phase("kernel-python"):
            result = _run_python(
                model, trace, warmup, workload, ptype, plane, vplane
            )
    apply_branch_state(model, plane)
    return result


def _run_python(model, trace, warmup, workload, ptype, plane, vplane) -> SimResult:
    """The fork of ``CoreModel._run`` driven by the precompute planes.

    Structure and variable names intentionally mirror ``core.py`` line for
    line — every divergence is a precompute substitution.  When changing
    scheduling semantics, change ``core.py`` first and re-derive this loop.
    """
    cfg = model.config
    predictor = model.predictor
    reissue = cfg.recovery is RecoveryMode.SELECTIVE_REISSUE

    result = SimResult(
        workload=workload if workload is not None else trace.name,
        predictor=predictor.name if ptype != _P_NONE else "none",
        recovery=cfg.recovery.value,
    )

    # Bandwidth resources, inlined over the limiter count dicts exactly as
    # in core.py (the objects stay authoritative for pruning and stats).
    fetch_bw = BandwidthLimiter(cfg.fetch_width)
    taken_bw = BandwidthLimiter(cfg.max_taken_per_cycle)
    issue_bw = BandwidthLimiter(cfg.issue_width)
    vp_write_bw = (
        BandwidthLimiter(cfg.vp_write_ports)
        if cfg.vp_write_ports is not None
        else None
    )
    fetch_counts = fetch_bw._counts
    taken_counts = taken_bw._counts
    issue_counts = issue_bw._counts
    vp_write_counts = vp_write_bw._counts if vp_write_bw is not None else None
    vp_write_width = cfg.vp_write_ports
    fetch_width = cfg.fetch_width
    taken_width = cfg.max_taken_per_cycle
    issue_width = cfg.issue_width
    commit_width = cfg.commit_width
    dbw_cycle = -1
    dbw_used = 0
    cbw_cycle = -1
    cbw_used = 0

    # Window resources (deques / heap of release cycles + occupancy ints).
    fq_rel: deque = deque()
    rob_rel: deque = deque()
    iq_rel: list = []
    lq_rel: deque = deque()
    sq_rel: deque = deque()
    int_prf_rel: deque = deque()
    fp_prf_rel: deque = deque()
    fq_size = cfg.fetch_queue
    rob_size = cfg.rob_entries
    iq_size = cfg.iq_entries
    lq_size = cfg.lq_entries
    sq_size = cfg.sq_entries
    int_prf_size = max(1, cfg.int_prf - cfg.arch_regs)
    fp_prf_size = max(1, cfg.fp_prf - cfg.arch_regs)
    rob_stalls = iq_stalls = 0
    fq_len = rob_len = iq_len = lq_len = sq_len = 0
    int_prf_len = fp_prf_len = 0

    # Functional units: free-server heaps per op class, with the same pool
    # sharing as core.py (dividers on multipliers, stores on load ports,
    # control on the INT ALUs).
    n_classes = len(OpClass)
    heap_for = {
        OpClass.INT_ALU: [0] * cfg.fu[OpClass.INT_ALU].units,
        OpClass.INT_MUL: [0] * cfg.fu[OpClass.INT_MUL].units,
        OpClass.FP_ADD: [0] * cfg.fu[OpClass.FP_ADD].units,
        OpClass.FP_MUL: [0] * cfg.fu[OpClass.FP_MUL].units,
        OpClass.LOAD: [0] * cfg.fu[OpClass.LOAD].units,
    }
    heap_for[OpClass.INT_DIV] = heap_for[OpClass.INT_MUL]
    heap_for[OpClass.FP_DIV] = heap_for[OpClass.FP_MUL]
    heap_for[OpClass.STORE] = heap_for[OpClass.LOAD]
    for cls in (OpClass.BRANCH, OpClass.JUMP, OpClass.CALL,
                OpClass.RET, OpClass.NOP):
        heap_for[cls] = heap_for[OpClass.INT_ALU]
    pool_free = [heap_for[OpClass(c)] for c in range(n_classes)]
    lats = [cfg.fu[OpClass(c)].latency for c in range(n_classes)]
    occs = [cfg.fu[OpClass(c)].occupancy for c in range(n_classes)]

    reg_ready = [0] * 64
    reg_spec_commit = [0] * 64

    store_buffer: deque = deque(maxlen=cfg.sq_entries + 16)
    train_queue: deque = deque()

    store_sets = model.store_sets
    predicted_store = store_sets.predicted_store
    store_fetched = store_sets.store_fetched
    memory = model.memory
    memory_fetch = memory.fetch
    memory_store = memory.store

    cols = trace.columns()
    col_seq = cols.seqs
    col_pc = cols.pcs
    col_line = cols.pc_lines
    col_op = cols.ops
    col_srcs = cols.srcs
    col_dst = cols.dsts
    col_value = cols.values
    col_addr = cols.mem_addrs
    col_size = cols.mem_sizes
    col_taken = cols.takens
    col_fp = cols.dst_is_fp
    col_is_branch = cols.is_branch
    col_is_cond = cols.is_cond_branch
    col_produces = cols.produces_value
    col_pkey = cols.pkeys

    redirect_l, scr_pc_l, scr_pkey_l = plane.lists()

    frontend = cfg.frontend_depth
    backend = cfg.backend_depth
    redirect_extra = cfg.redirect_extra
    decode_redirect_depth = cfg.decode_redirect_depth
    lookahead_cap = cfg.squash_lookahead
    load_timing = model._load_timing
    consumer_before = model._consumer_before

    fetch_resume = 0
    line_ready = 0
    current_line = -1
    last_fetch = 0
    last_dispatch = 0
    last_commit = 0
    measure_start_commit = None
    vp_all_scope = cfg.vp_scope == "all"
    have_predictor = ptype != _P_NONE
    is_oracle = ptype == _P_ORACLE
    is_lvp = ptype == _P_LVP
    is_stride = ptype == _P_STRIDE
    is_vtage = ptype == _P_VTAGE

    n_uops_meas = 0
    cond_branches = 0
    branch_mispredicts = 0
    btb_redirects = 0
    vp_eligible_n = vp_predicted_n = vp_used_n = 0
    vp_correct_used = vp_wrong_used = 0
    vp_squashes = vp_harmless_wrong = vp_reissues = 0
    vp_write_delayed = 0
    next_train = _NEVER

    # ---- Per-family predictor state, bound to locals --------------------
    if is_lvp:
        lvp_mask = predictor.entries - 1
        lvp_tags = predictor._tags
        lvp_values = predictor._values
        lvp_conf = predictor._conf
        policy = predictor.confidence
        threshold = _conf_threshold(policy)
        is_confident = policy.is_confident
        on_correct = policy.on_correct
        on_incorrect = policy.on_incorrect

        def apply_train(entry):
            __, idx, key, actual = entry
            if lvp_tags[idx] != key:
                lvp_tags[idx] = key
                lvp_values[idx] = actual
                lvp_conf[idx] = 0
            elif lvp_values[idx] == actual:
                lvp_conf[idx] = on_correct(lvp_conf[idx])
            else:
                lvp_conf[idx] = on_incorrect(lvp_conf[idx])
                lvp_values[idx] = actual

    elif is_stride:
        st_mask = predictor.entries - 1
        st_tags = predictor._tags
        st_last = predictor._last
        st_stride = predictor._stride
        st_conf = predictor._conf
        spec_last = predictor._spec_last
        inflight = predictor._inflight
        two_delta = type(predictor) is TwoDeltaStridePredictor
        st_pred = predictor._stride2 if two_delta else st_stride
        policy = predictor.confidence
        threshold = _conf_threshold(policy)
        is_confident = policy.is_confident
        on_correct = policy.on_correct
        on_incorrect = policy.on_incorrect

        def apply_train(entry):
            __, idx, key, pred_value, actual = entry
            if pred_value is not None:
                live = inflight.get(idx, 0) - 1
                if live <= 0:
                    inflight.pop(idx, None)
                    spec_last.pop(idx, None)
                else:
                    inflight[idx] = live
            if st_tags[idx] != key:
                st_tags[idx] = key
                st_last[idx] = actual
                st_stride[idx] = 0
                st_conf[idx] = 0
                spec_last.pop(idx, None)
                inflight.pop(idx, None)
                return
            if pred_value is not None:
                predicted = pred_value
            else:
                predicted = (st_last[idx] + st_pred[idx]) & MASK64
            if predicted == actual:
                st_conf[idx] = on_correct(st_conf[idx])
            else:
                st_conf[idx] = on_incorrect(st_conf[idx])
            # _train_stride (after the confidence transition, before resync).
            delta = (actual - st_last[idx]) & MASK64
            if two_delta:
                if delta == st_stride[idx]:
                    st_pred[idx] = delta
                st_stride[idx] = delta
            else:
                st_stride[idx] = delta
            if predicted != actual:
                live = inflight.get(idx, 0)
                if live > 0:
                    spec_last[idx] = (actual + st_pred[idx] * live) & MASK64
                else:
                    spec_last.pop(idx, None)
            st_last[idx] = actual

    elif is_vtage:
        vt = predictor
        ncomp = len(vt.components)
        vt_tags = [c.tags for c in vt.components]
        vt_values = [c.values for c in vt.components]
        vt_conf = [c.conf for c in vt.components]
        vt_useful = [c.useful for c in vt.components]
        base_mask = vt._base_index_mask
        base_values = vt._base_values
        base_conf = vt._base_conf
        vthr = vt._conf_threshold
        vt_is_confident = vt._is_confident
        v_on_correct = vt._on_correct
        v_on_incorrect = vt._on_incorrect
        vt_lfsr = vt._lfsr
        vp_idx, vp_tag = vplane.lists()

        def apply_train(entry):
            __, i, provider, eff, base_idx, predicted, actual = entry
            if provider == 0:
                if base_values[base_idx] == actual:
                    base_conf[base_idx] = v_on_correct(base_conf[base_idx])
                else:
                    if base_conf[base_idx] == 0:
                        base_values[base_idx] = actual
                    base_conf[base_idx] = v_on_incorrect(base_conf[base_idx])
            else:
                c = provider - 1
                row = vp_idx[c]
                idx = row[i]
                conf_row = vt_conf[c]
                was_weak = conf_row[idx] == 0
                if vt_values[c][idx] == actual:
                    conf_row[idx] = v_on_correct(conf_row[idx])
                    vt_useful[c][idx] = 1
                else:
                    if conf_row[idx] == 0:
                        vt_values[c][idx] = actual
                    conf_row[idx] = v_on_incorrect(conf_row[idx])
                    vt_useful[c][idx] = 0
                if was_weak:
                    if eff != 0 and eff != provider:
                        a = eff - 1
                        aidx = vp_idx[a][i]
                        aconf = vt_conf[a]
                        if vt_values[a][aidx] == actual:
                            aconf[aidx] = v_on_correct(aconf[aidx])
                            vt_useful[a][aidx] = 1
                        else:
                            if aconf[aidx] == 0:
                                vt_values[a][aidx] = actual
                            aconf[aidx] = v_on_incorrect(aconf[aidx])
                            vt_useful[a][aidx] = 0
                    if base_values[base_idx] == actual:
                        base_conf[base_idx] = v_on_correct(base_conf[base_idx])
                    else:
                        if base_conf[base_idx] == 0:
                            base_values[base_idx] = actual
                        base_conf[base_idx] = v_on_incorrect(base_conf[base_idx])
            if predicted != actual and provider < ncomp:
                # _allocate in a longer-history component.
                candidates = [
                    c for c in range(provider, ncomp)
                    if vt_useful[c][vp_idx[c][i]] == 0
                ]
                if not candidates:
                    for c in range(provider, ncomp):
                        vt_useful[c][vp_idx[c][i]] = 0
                    return
                c = candidates[vt_lfsr.step() % len(candidates)]
                idx = vp_idx[c][i]
                vt_tags[c][idx] = vp_tag[c][i]
                vt_values[c][idx] = actual
                vt_conf[c][idx] = 0
                vt_useful[c][idx] = 0
                vt._tags_gen += 1

    else:
        apply_train = None

    rows = zip(
        col_op, col_pc, col_line, col_srcs, col_dst,
        col_fp, col_is_branch, col_is_cond, col_produces, redirect_l,
    )
    for i, (op, pc, pc_line, srcs, dst, dst_fp, is_branch, is_cond,
            produces, branch_redirect) in enumerate(rows):
        measured = i >= warmup
        is_load = op == _LOAD
        is_store = op == _STORE

        # ---- Fetch ------------------------------------------------------
        if pc_line != current_line:
            current_line = pc_line
            floor = fetch_resume if fetch_resume > last_fetch else last_fetch
            line_ready = memory_fetch(pc, floor)
            if line_ready <= floor + 1:
                line_ready = 0  # L1I hit: no extra constraint
        fetch = fetch_resume if fetch_resume > line_ready else line_ready
        if fq_len >= fq_size:
            oldest = fq_rel.popleft()
            fq_len -= 1
            if oldest > fetch:
                fetch = oldest
        used = fetch_counts.get(fetch, 0)
        while used >= fetch_width:
            fetch += 1
            used = fetch_counts.get(fetch, 0)
        fetch_counts[fetch] = used + 1
        if is_branch and col_taken[i]:
            used = taken_counts.get(fetch, 0)
            while used >= taken_width:
                fetch += 1
                used = taken_counts.get(fetch, 0)
            taken_counts[fetch] = used + 1
        last_fetch = fetch

        # ---- Apply predictor trainings that have committed by now -------
        while next_train <= fetch:
            apply_train(train_queue.popleft())
            next_train = train_queue[0][0] if train_queue else _NEVER

        # ---- Branch redirect code: precomputed on the trace plane -------
        # (branch_redirect came out of the fused row tuple; the plane walk
        # already trained TAGE/BTB/RAS and maintained the shared history.)

        # ---- Value prediction at fetch ----------------------------------
        prediction = False
        vp_used = False
        vp_wrong = False
        eligible = have_predictor and produces and (vp_all_scope or is_load)
        if eligible:
            if is_vtage:
                prediction = True
                scr = scr_pkey_l[i]
                base_idx = scr & base_mask
                provider = 0
                alt = 0
                for c in range(ncomp):
                    if vt_tags[c][vp_idx[c][i]] == vp_tag[c][i]:
                        alt = provider
                        provider = c + 1
                if provider == 0:
                    value = base_values[base_idx]
                    conf = base_conf[base_idx]
                    eff = 0
                else:
                    c = provider - 1
                    pidx = vp_idx[c][i]
                    if vt_conf[c][pidx] == 0 and vt_useful[c][pidx] == 0:
                        eff = alt
                    else:
                        eff = provider
                    if eff == 0:
                        value = base_values[base_idx]
                        conf = base_conf[base_idx]
                    else:
                        e = eff - 1
                        eidx = vp_idx[e][i]
                        value = vt_values[e][eidx]
                        conf = vt_conf[e][eidx]
                if (conf >= vthr) if vthr is not None else vt_is_confident(conf):
                    vp_used = True
                    vp_wrong = value != col_value[i]
            elif is_oracle:
                prediction = True
                vp_used = True
            elif is_lvp:
                idx = scr_pkey_l[i] & lvp_mask
                pkey = col_pkey[i]
                if lvp_tags[idx] == pkey:
                    prediction = True
                    value = lvp_values[idx]
                    conf = lvp_conf[idx]
                    if (conf >= threshold) if threshold is not None \
                            else is_confident(conf):
                        vp_used = True
                        vp_wrong = value != col_value[i]
            else:  # stride family
                idx = scr_pkey_l[i] & st_mask
                pkey = col_pkey[i]
                if st_tags[idx] == pkey:
                    prediction = True
                    base = spec_last.get(idx, st_last[idx])
                    value = (base + st_pred[idx]) & MASK64
                    conf = st_conf[idx]
                    if (conf >= threshold) if threshold is not None \
                            else is_confident(conf):
                        vp_used = True
                        vp_wrong = value != col_value[i]
                    # speculate(): chain the next in-flight occurrence.
                    spec_last[idx] = value
                    inflight[idx] = inflight.get(idx, 0) + 1
            if measured:
                vp_eligible_n += 1
                if prediction:
                    vp_predicted_n += 1
                if vp_used:
                    vp_used_n += 1
                    if vp_wrong:
                        vp_wrong_used += 1
                    else:
                        vp_correct_used += 1

        # ---- Dispatch (rename + window allocation) ----------------------
        dispatch = fetch + frontend
        if vp_used and vp_write_counts is not None:
            # Inlined BandwidthLimiter.grant over the write-port counts.
            write_cycle = fetch + 2
            used = vp_write_counts.get(write_cycle, 0)
            while used >= vp_write_width:
                write_cycle += 1
                used = vp_write_counts.get(write_cycle, 0)
            vp_write_counts[write_cycle] = used + 1
            if write_cycle + 1 > dispatch:
                if measured:
                    vp_write_delayed += 1
                dispatch = write_cycle + 1
        if last_dispatch > dispatch:
            dispatch = last_dispatch
        if rob_len >= rob_size:
            oldest = rob_rel.popleft()
            rob_len -= 1
            if oldest > dispatch:
                rob_stalls += 1
                dispatch = oldest
        if iq_len >= iq_size:
            soonest = heappop(iq_rel)
            iq_len -= 1
            if soonest > dispatch:
                iq_stalls += 1
                dispatch = soonest
        if is_load:
            if lq_len >= lq_size:
                oldest = lq_rel.popleft()
                lq_len -= 1
                if oldest > dispatch:
                    dispatch = oldest
        elif is_store:
            if sq_len >= sq_size:
                oldest = sq_rel.popleft()
                sq_len -= 1
                if oldest > dispatch:
                    dispatch = oldest
        if dst is not None:
            if dst_fp:
                if fp_prf_len >= fp_prf_size:
                    oldest = fp_prf_rel.popleft()
                    fp_prf_len -= 1
                    if oldest > dispatch:
                        dispatch = oldest
            elif int_prf_len >= int_prf_size:
                oldest = int_prf_rel.popleft()
                int_prf_len -= 1
                if oldest > dispatch:
                    dispatch = oldest
        if dispatch > dbw_cycle:
            dbw_cycle = dispatch
            dbw_used = 1
        elif dbw_used < fetch_width:
            dispatch = dbw_cycle
            dbw_used += 1
        else:
            dbw_cycle += 1
            dispatch = dbw_cycle
            dbw_used = 1
        last_dispatch = dispatch
        fq_rel.append(dispatch)
        fq_len += 1

        # ---- Operand readiness ------------------------------------------
        ready = dispatch + 1
        spec_until = 0
        if reissue:
            for src in srcs:
                src_ready = reg_ready[src]
                if src_ready > ready:
                    ready = src_ready
                sc = reg_spec_commit[src]
                if sc > spec_until:
                    spec_until = sc
        else:
            for src in srcs:
                src_ready = reg_ready[src]
                if src_ready > ready:
                    ready = src_ready

        wait_store_seq = -1
        if is_load:
            predicted = predicted_store(pc)
            if predicted is not None:
                for entry in reversed(store_buffer):
                    if entry[0] == predicted:
                        if entry[3] > ready:
                            ready = entry[3]
                        wait_store_seq = predicted
                        break

        # ---- Issue + execute --------------------------------------------
        free = pool_free[op]
        start = free[0]
        if ready > start:
            start = ready
        heapreplace(free, start + occs[op])
        issue = start
        used = issue_counts.get(issue, 0)
        while used >= issue_width:
            issue += 1
            used = issue_counts.get(issue, 0)
        issue_counts[issue] = used + 1
        if is_load:
            complete = load_timing(
                pc, col_addr[i], col_size[i], issue,
                store_buffer, wait_store_seq, result, measured,
            )
            if complete < 0:  # memory-order violation: squash younger
                complete = -complete
                resume = complete + redirect_extra
                if resume > fetch_resume:
                    fetch_resume = resume
        elif is_store:
            complete = issue + 1
        else:
            complete = issue + lats[op]

        # ---- Commit -----------------------------------------------------
        commit = complete + backend
        if last_commit > commit:
            commit = last_commit
        if commit > cbw_cycle:
            cbw_cycle = commit
            cbw_used = 1
        elif cbw_used < commit_width:
            commit = cbw_cycle
            cbw_used += 1
        else:
            cbw_cycle += 1
            commit = cbw_cycle
            cbw_used = 1
        last_commit = commit

        # ---- Branch redirect --------------------------------------------
        if branch_redirect:
            if branch_redirect == 1:  # execute-resolved mispredict
                resume = complete + redirect_extra
                if measured:
                    branch_mispredicts += 1
            else:  # decode-resolved BTB redirect
                resume = fetch + decode_redirect_depth
                if measured:
                    btb_redirects += 1
            if resume > fetch_resume:
                fetch_resume = resume
        if measured and is_cond:
            cond_branches += 1

        # ---- Value prediction outcome -----------------------------------
        consumer_ready = complete
        producer_spec_commit = 0
        if eligible:
            if prediction:
                if vp_used and not vp_wrong:
                    consumer_ready = 0
                    producer_spec_commit = complete if reissue else 0
                elif vp_used:
                    if reissue:
                        consumer_ready = complete
                        producer_spec_commit = complete
                        if measured:
                            vp_reissues += 1
                    else:
                        consumed_early = consumer_before(
                            col_srcs, col_dst, i, fetch, complete,
                            frontend, fetch_width, lookahead_cap,
                        )
                        if consumed_early:
                            resume = commit + redirect_extra
                            if resume > fetch_resume:
                                fetch_resume = resume
                            # predictor.on_squash(): only the stride family
                            # holds speculative per-instruction state.
                            if is_stride:
                                spec_last.clear()
                                inflight.clear()
                            store_sets.flush_inflight()
                            store_buffer.clear()
                            if measured:
                                vp_squashes += 1
                        else:
                            if measured:
                                vp_harmless_wrong += 1
                if not is_oracle:
                    if next_train == _NEVER:
                        next_train = commit
                    if is_vtage:
                        train_queue.append(
                            (commit, i, provider, eff, base_idx, value,
                             col_value[i])
                        )
                    elif is_lvp:
                        train_queue.append((commit, idx, pkey, col_value[i]))
                    else:
                        train_queue.append(
                            (commit, idx, pkey, value, col_value[i])
                        )
            else:
                # Lookup missed: still train (allocation path).
                if next_train == _NEVER:
                    next_train = commit
                if is_lvp:
                    train_queue.append((commit, idx, pkey, col_value[i]))
                else:  # stride family (VTAGE/oracle lookups never miss)
                    train_queue.append((commit, idx, pkey, None, col_value[i]))

        # ---- Register state update --------------------------------------
        if dst is not None:
            reg_ready[dst] = consumer_ready
            if reissue:
                reg_spec_commit[dst] = producer_spec_commit

        # ---- Window releases --------------------------------------------
        rob_rel.append(commit)
        rob_len += 1
        heappush(iq_rel, max(issue, spec_until) if reissue else issue)
        iq_len += 1
        if is_load:
            lq_rel.append(commit)
            lq_len += 1
        elif is_store:
            sq_rel.append(commit)
            sq_len += 1
            addr = col_addr[i]
            store_buffer.append(
                (col_seq[i], addr, addr + col_size[i], complete, commit, pc)
            )
            store_fetched(pc, col_seq[i])
            memory_store(pc, addr, commit)
        if dst is not None:
            if dst_fp:
                fp_prf_rel.append(commit)
                fp_prf_len += 1
            else:
                int_prf_rel.append(commit)
                int_prf_len += 1

        # ---- Measurement bookkeeping ------------------------------------
        if measured:
            if measure_start_commit is None:
                measure_start_commit = commit
            n_uops_meas += 1

        # ---- Retire per-cycle bandwidth bookkeeping ---------------------
        if not (i & _PRUNE_PERIOD_MASK):
            issue_bw.advance_watermark(last_dispatch)
            fetch_floor = fetch_resume
            if fq_len >= fq_size and fq_rel[0] > fetch_floor:
                fetch_floor = fq_rel[0]
            fetch_bw.advance_watermark(fetch_floor)
            taken_bw.advance_watermark(fetch_floor)
            if vp_write_bw is not None:
                vp_write_bw.advance_watermark(fetch_floor)

    # Flush remaining trainings (end of trace).
    while train_queue:
        apply_train(train_queue.popleft())

    if measure_start_commit is None:
        measure_start_commit = 0
    result.n_uops = n_uops_meas
    result.cond_branches = cond_branches
    result.branch_mispredicts = branch_mispredicts
    result.btb_redirects = btb_redirects
    result.vp_eligible = vp_eligible_n
    result.vp_predicted = vp_predicted_n
    result.vp_used = vp_used_n
    result.vp_correct_used = vp_correct_used
    result.vp_wrong_used = vp_wrong_used
    result.vp_squashes = vp_squashes
    result.vp_harmless_wrong = vp_harmless_wrong
    result.vp_reissues = vp_reissues
    result.vp_write_delayed = vp_write_delayed
    result.cycles = max(1, last_commit - measure_start_commit)
    result.rob_stalls = rob_stalls
    result.iq_stalls = iq_stalls
    result.l1d_misses = memory.l1d.misses
    result.l1d_accesses = memory.l1d.hits + memory.l1d.misses
    result.l2_misses = memory.l2.misses
    result.l2_accesses = memory.l2.hits + memory.l2.misses
    return result
