"""Resource contention primitives for the scheduling model.

Three flavours of hardware resource appear in the core:

* :class:`BandwidthLimiter` — a per-cycle throughput cap (fetch width,
  rename/dispatch width, issue width, commit width, PRF prediction write
  ports);
* :class:`UnitPool` — k units that each serve one operation at a time
  (functional units; non-pipelined dividers occupy their unit for the full
  latency);
* :class:`InOrderWindow` / :class:`OutOfOrderWindow` — finite buffers whose
  entries are reclaimed in allocation order (ROB, LQ, SQ, physical register
  writers) or out of order (the issue queue, freed at issue).
"""

from __future__ import annotations

import heapq
from collections import deque


class BandwidthLimiter:
    """At most *width* grants per cycle; requests may arrive out of order."""

    def __init__(self, width: int):
        if width <= 0:
            raise ValueError("width must be positive")
        self.width = width
        self._counts: dict[int, int] = {}

    def grant(self, earliest: int) -> int:
        """Return the first cycle >= *earliest* with a free slot, claiming it."""
        counts = self._counts
        cycle = earliest
        while counts.get(cycle, 0) >= self.width:
            cycle += 1
        counts[cycle] = counts.get(cycle, 0) + 1
        return cycle

    def used_at(self, cycle: int) -> int:
        return self._counts.get(cycle, 0)


class UnitPool:
    """*units* servers; each grant occupies a server for *occupancy* cycles."""

    def __init__(self, units: int):
        if units <= 0:
            raise ValueError("need at least one unit")
        self._free = [0] * units

    def grant(self, earliest: int, occupancy: int = 1) -> int:
        """Return the start cycle on the earliest-available unit."""
        start = max(earliest, self._free[0])
        heapq.heapreplace(self._free, start + occupancy)
        return start


class InOrderWindow:
    """A buffer of *size* entries allocated and reclaimed in program order.

    Protocol: ``acquire(earliest)`` returns the earliest cycle an entry is
    available (waiting for the oldest occupant when full); the caller must
    then ``push_release(t)`` with the cycle its own entry will be reclaimed
    (its commit time).  Release times must be non-decreasing, which holds
    for commit times by construction.
    """

    def __init__(self, size: int):
        if size <= 0:
            raise ValueError("window size must be positive")
        self.size = size
        self._releases: deque[int] = deque()
        self.stalls = 0

    def acquire(self, earliest: int) -> int:
        if len(self._releases) < self.size:
            return earliest
        oldest = self._releases.popleft()
        if oldest > earliest:
            self.stalls += 1
            return oldest
        return earliest

    def push_release(self, release_cycle: int) -> None:
        self._releases.append(release_cycle)

    @property
    def occupancy(self) -> int:
        return len(self._releases)


class OutOfOrderWindow:
    """A buffer whose entries free out of order (the issue queue).

    When full, the next allocation waits for the *earliest-releasing*
    occupant, which a min-heap yields directly.
    """

    def __init__(self, size: int):
        if size <= 0:
            raise ValueError("window size must be positive")
        self.size = size
        self._releases: list[int] = []
        self.stalls = 0

    def acquire(self, earliest: int) -> int:
        if len(self._releases) < self.size:
            return earliest
        soonest = heapq.heappop(self._releases)
        if soonest > earliest:
            self.stalls += 1
            return soonest
        return earliest

    def push_release(self, release_cycle: int) -> None:
        heapq.heappush(self._releases, release_cycle)

    @property
    def occupancy(self) -> int:
        return len(self._releases)
