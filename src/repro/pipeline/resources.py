"""Resource contention primitives for the scheduling model.

Three flavours of hardware resource appear in the core:

* :class:`BandwidthLimiter` — a per-cycle throughput cap (fetch width,
  rename/dispatch width, issue width, commit width, PRF prediction write
  ports);
* :class:`UnitPool` — k units that each serve one operation at a time
  (functional units; non-pipelined dividers occupy their unit for the full
  latency);
* :class:`InOrderWindow` / :class:`OutOfOrderWindow` — finite buffers whose
  entries are reclaimed in allocation order (ROB, LQ, SQ, physical register
  writers) or out of order (the issue queue, freed at issue).
"""

from __future__ import annotations

import heapq
from collections import deque


class BandwidthLimiter:
    """At most *width* grants per cycle; requests may arrive out of order.

    The per-cycle grant counts live in a dict keyed by cycle.  Left alone
    it would retain one entry per simulated cycle for the whole run (the
    seed model leaked exactly that, one dict per limiter); callers instead
    publish a *watermark* — a cycle below which no future request can land
    — via :meth:`advance_watermark`, and the limiter prunes retired
    entries in place.  Pruning is observationally invisible: an entry is
    dropped only once no ``grant`` can ever probe it again.
    """

    __slots__ = ("width", "_counts", "_floor")

    #: Entry count above which an advancing watermark triggers a prune.
    PRUNE_THRESHOLD = 256

    def __init__(self, width: int):
        if width <= 0:
            raise ValueError("width must be positive")
        self.width = width
        self._counts: dict[int, int] = {}
        self._floor = 0

    def grant(self, earliest: int) -> int:
        """Return the first cycle >= *earliest* with a free slot, claiming it."""
        counts = self._counts
        cycle = earliest
        while counts.get(cycle, 0) >= self.width:
            cycle += 1
        counts[cycle] = counts.get(cycle, 0) + 1
        return cycle

    def advance_watermark(self, cycle: int) -> None:
        """Declare that every future ``grant(earliest)`` has ``earliest >=
        cycle``; prunes entries of retired cycles once enough accumulate.

        The dict is pruned *in place* so hot loops holding a direct
        reference to ``_counts`` stay valid.
        """
        if cycle > self._floor:
            self._floor = cycle
            counts = self._counts
            if len(counts) > self.PRUNE_THRESHOLD:
                for stale in [c for c in counts if c < cycle]:
                    del counts[stale]

    @property
    def tracked_cycles(self) -> int:
        """Number of live per-cycle entries (regression-tested bound)."""
        return len(self._counts)

    def used_at(self, cycle: int) -> int:
        return self._counts.get(cycle, 0)


class UnitPool:
    """*units* servers; each grant occupies a server for *occupancy* cycles."""

    __slots__ = ("_free",)

    def __init__(self, units: int):
        if units <= 0:
            raise ValueError("need at least one unit")
        self._free = [0] * units

    def grant(self, earliest: int, occupancy: int = 1) -> int:
        """Return the start cycle on the earliest-available unit."""
        start = max(earliest, self._free[0])
        heapq.heapreplace(self._free, start + occupancy)
        return start


class InOrderWindow:
    """A buffer of *size* entries allocated and reclaimed in program order.

    Protocol: ``acquire(earliest)`` returns the earliest cycle an entry is
    available (waiting for the oldest occupant when full); the caller must
    then ``push_release(t)`` with the cycle its own entry will be reclaimed
    (its commit time).  Release times must be non-decreasing, which holds
    for commit times by construction.
    """

    __slots__ = ("size", "_releases", "stalls")

    def __init__(self, size: int):
        if size <= 0:
            raise ValueError("window size must be positive")
        self.size = size
        self._releases: deque[int] = deque()
        self.stalls = 0

    def acquire(self, earliest: int) -> int:
        if len(self._releases) < self.size:
            return earliest
        oldest = self._releases.popleft()
        if oldest > earliest:
            self.stalls += 1
            return oldest
        return earliest

    def push_release(self, release_cycle: int) -> None:
        self._releases.append(release_cycle)

    @property
    def occupancy(self) -> int:
        return len(self._releases)


class OutOfOrderWindow:
    """A buffer whose entries free out of order (the issue queue).

    When full, the next allocation waits for the *earliest-releasing*
    occupant, which a min-heap yields directly.
    """

    __slots__ = ("size", "_releases", "stalls")

    def __init__(self, size: int):
        if size <= 0:
            raise ValueError("window size must be positive")
        self.size = size
        self._releases: list[int] = []
        self.stalls = 0

    def acquire(self, earliest: int) -> int:
        if len(self._releases) < self.size:
            return earliest
        soonest = heapq.heappop(self._releases)
        if soonest > earliest:
            self.stalls += 1
            return soonest
        return earliest

    def push_release(self, release_cycle: int) -> None:
        heapq.heappush(self._releases, release_cycle)

    @property
    def occupancy(self) -> int:
        return len(self._releases)
