"""Guarded promotion of benchmark reports into the committed baseline.

The benchmark emitters (``pytest benchmarks/``) quarantine every report
in the gitignored scratch directory (``bench_out/`` by default — see
``benchmarks/bench_io.py``).  The committed ``BENCH_*.json`` files at
the repository root are the regression baseline the perf gates read, and
history shows they drift exactly one way: someone hand-edits or
casually overwrites them.  ``repro bench promote`` is the only supported
path from scratch to committed, and it refuses unless

* ``REPRO_BENCH_PROMOTE=1`` is set — promotion is always a deliberate,
  explicit act, never a side effect of running something else; and
* the quarantined report carries its provenance ``run`` block with a
  real repeat count (``rounds >= 1``) and a recorded 1-minute load
  average — an unattributable number cannot become the baseline; and
* the recorded load average does not show the measurement was taken on
  a saturated machine (above :data:`LOAD_FACTOR` x the CPU count), in
  which case the number is noise and promoting it would poison every
  future regression comparison.

Promotion is an atomic copy (write-temp + rename): a crash mid-promote
can never leave a half-written committed baseline.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

#: The promotion consent flag (shared with ``benchmarks/bench_io.py``).
PROMOTE_ENV = "REPRO_BENCH_PROMOTE"

#: Where quarantined reports live (shared with ``benchmarks/bench_io.py``).
BENCH_DIR_ENV = "REPRO_BENCH_DIR"

#: Committed reports match this pattern at the repository root.
BENCH_GLOB = "BENCH_*.json"

#: A report whose recorded 1-minute load average exceeds
#: ``LOAD_FACTOR * cpu_count`` was measured on a saturated machine and
#: is refused (override the machine check with ``--allow-loaded``).
LOAD_FACTOR = 1.5


class PromoteError(Exception):
    """A report failed the promotion guard; the message says why."""


def repo_root() -> Path:
    """The repository root (where committed ``BENCH_*.json`` live)."""
    return Path(__file__).resolve().parents[2]


def bench_scratch_dir(explicit: str | os.PathLike | None = None) -> Path:
    """The quarantine directory promote reads from."""
    if explicit:
        return Path(explicit)
    raw = os.environ.get(BENCH_DIR_ENV, "").strip()
    return Path(raw) if raw else repo_root() / "bench_out"


def validate_report(payload: dict, *,
                    allow_loaded: bool = False) -> list[str]:
    """Why *payload* may not be promoted; empty means it may.

    Checks the provenance contract: a ``run`` block with an honest
    repeat count and a recorded load average, taken on a machine that
    was not saturated at measurement time.
    """
    problems: list[str] = []
    run = payload.get("run")
    if not isinstance(run, dict):
        return ["report carries no 'run' provenance block — re-run the "
                "emitter (pytest benchmarks/), which records one"]
    rounds = run.get("rounds")
    if not isinstance(rounds, int) or rounds < 1:
        problems.append(f"provenance 'rounds' is {rounds!r}; a promoted "
                        "number needs at least one recorded round")
    if "load_avg_1m" not in run:
        problems.append("provenance records no 'load_avg_1m' — an "
                        "unattributable measurement cannot become the "
                        "baseline")
    elif not allow_loaded:
        load = run.get("load_avg_1m")
        cpus = run.get("cpu_count") or os.cpu_count() or 1
        if isinstance(load, (int, float)) and load > LOAD_FACTOR * cpus:
            problems.append(
                f"measured under load {load:g} on {cpus} CPU(s) "
                f"(> {LOAD_FACTOR:g}x): the number is noise; re-measure "
                "on an idle machine or pass --allow-loaded")
    return problems


def promote(names: list[str] | None = None, *,
            source_dir: str | os.PathLike | None = None,
            dest_dir: str | os.PathLike | None = None,
            allow_loaded: bool = False,
            env: dict | None = None) -> list[str]:
    """Promote quarantined reports into the committed baseline.

    *names* selects reports (default: every ``BENCH_*.json`` in the
    scratch directory).  Returns the promoted filenames.  Raises
    :class:`PromoteError` when consent (``REPRO_BENCH_PROMOTE=1``) is
    missing or any selected report fails :func:`validate_report` —
    all-or-nothing, so a partial promote can never mix generations.
    """
    environ = env if env is not None else os.environ
    if environ.get(PROMOTE_ENV) != "1":
        raise PromoteError(
            f"refusing to modify the committed baseline: set "
            f"{PROMOTE_ENV}=1 to confirm promotion (committed BENCH_*.json "
            "change only through this explicit step)")
    source = bench_scratch_dir(source_dir)
    dest = Path(dest_dir) if dest_dir else repo_root()
    if names:
        paths = [source / name for name in names]
        missing = [str(p) for p in paths if not p.exists()]
        if missing:
            raise PromoteError(
                "no quarantined report at: " + ", ".join(missing) +
                " (run the emitter first: pytest benchmarks/)")
    else:
        paths = sorted(source.glob(BENCH_GLOB))
        if not paths:
            raise PromoteError(
                f"nothing to promote: no {BENCH_GLOB} under {source} "
                "(run the emitter first: pytest benchmarks/)")
    # Validate everything before touching anything.
    payloads: dict[Path, dict] = {}
    for path in paths:
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise PromoteError(f"unreadable report {path}: {exc}") from None
        problems = validate_report(payload, allow_loaded=allow_loaded)
        if problems:
            raise PromoteError(
                f"{path.name} fails the promotion guard:\n  - " +
                "\n  - ".join(problems))
        payloads[path] = payload
    promoted: list[str] = []
    for path, payload in payloads.items():
        payload.setdefault("run", {})["promoted"] = True
        target = dest / path.name
        tmp = target.with_name(target.name + ".tmp")
        tmp.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        tmp.replace(target)
        promoted.append(path.name)
    return promoted
