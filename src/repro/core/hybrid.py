"""Hybrid value predictors (Section 7.1.2).

The paper combines VTAGE with 2D-Stride (and, as the baseline hybrid,
o4-FCM with 2D-Stride) using a deliberately simple arbitration rule:

* if only one component is confident, its prediction is selected;
* if both are confident and agree, the prediction proceeds;
* if both are confident but disagree, **no** prediction is made.

The hybrid also cross-feeds speculative state: "use the last prediction of
VTAGE as the next last value for 2D-Stride if VTAGE is confident".  At
retire, *all* components are trained with the committed value.
"""

from __future__ import annotations

from repro.predictors.base import Prediction, PredictionContext, ValuePredictor
from repro.predictors.stride import StridePredictor


class HybridPredictor(ValuePredictor):
    """Two-component hybrid with agree-gating arbitration."""

    name = "Hybrid"

    def __init__(self, first: ValuePredictor, second: ValuePredictor, name: str | None = None):
        self.first = first
        self.second = second
        self.name = name if name is not None else f"{first.name}+{second.name}"

    def lookup(self, key: int, ctx: PredictionContext) -> Prediction | None:
        pred_a = self.first.lookup(key, ctx)
        pred_b = self.second.lookup(key, ctx)
        chosen = self._arbitrate(pred_a, pred_b)
        payload = (pred_a, pred_b)
        if chosen is None:
            # Neither component hit; expose an unconfident null prediction so
            # training can still reach both components.
            return Prediction(value=0, confident=False, payload=payload, source=self.name)
        return Prediction(
            value=chosen.value,
            confident=chosen.confident,
            payload=payload,
            source=chosen.source,
        )

    @staticmethod
    def _arbitrate(
        pred_a: Prediction | None, pred_b: Prediction | None
    ) -> Prediction | None:
        a_conf = pred_a is not None and pred_a.confident
        b_conf = pred_b is not None and pred_b.confident
        if a_conf and b_conf:
            if pred_a.value == pred_b.value:
                return pred_a
            # Confident disagreement: abstain.
            return Prediction(value=0, confident=False, source="disagree")
        if a_conf:
            return pred_a
        if b_conf:
            return pred_b
        # No confident component: return any hit for bookkeeping (unused).
        return pred_a if pred_a is not None else pred_b

    def speculate(self, key: int, prediction: Prediction | None) -> None:
        if prediction is None:
            return
        pred_a, pred_b = prediction.payload
        self.first.speculate(key, pred_a)
        self.second.speculate(key, pred_b)
        # Cross-feed: a confident component's prediction becomes the
        # speculative last occurrence for a stride-based partner.
        if prediction.confident:
            for component in (self.first, self.second):
                if isinstance(component, StridePredictor):
                    component.set_speculative_last(key, prediction.value)

    def train(self, key: int, actual: int, prediction: Prediction | None) -> None:
        if prediction is None or prediction.payload is None:
            self.first.train(key, actual, None)
            self.second.train(key, actual, None)
            return
        pred_a, pred_b = prediction.payload
        self.first.train(key, actual, pred_a)
        self.second.train(key, actual, pred_b)

    def on_squash(self) -> None:
        self.first.on_squash()
        self.second.on_squash()

    def storage_bits(self) -> int:
        return self.first.storage_bits() + self.second.storage_bits()

    def describe(self) -> str:
        return f"hybrid[{self.first.describe()} | {self.second.describe()}]"
