"""VTAGE — the Value TAgged GEometric history length predictor (Section 6).

VTAGE is the paper's main structural contribution: a value predictor derived
from the ITTAGE indirect-branch predictor.  A (1+N)-component VTAGE consists
of:

* a tagless *base* component — an LVP table indexed by instruction address
  only — and
* N *tagged* components, each indexed by a hash of the instruction address
  with a different number of bits of the global branch history (plus path
  history).  The history lengths form a geometric series (2, 4, 8, ... for
  the paper's 6-component configuration, Table 1).

An entry of a tagged component holds a partial tag (12 + rank bits), a 1-bit
usefulness counter ``u``, a full 64-bit value ``val`` and a 3-bit
confidence/hysteresis counter ``c``.  At prediction time all components are
searched in parallel; the matching component with the longest history — the
*provider* — supplies the prediction, which is used only if ``c`` is
saturated (this confidence gating is the main difference from ITTAGE).

Update policy (at commit, only the provider is updated):

* correct:   ``c++`` (saturating, possibly probabilistic under FPC), ``u = 1``;
* incorrect: ``val`` replaced if ``c == 0``; ``c = 0``; ``u = 0``; and a new
  entry is allocated in a randomly chosen not-useful (``u == 0``) component
  using a longer history than the provider.  If all upper components are
  useful, their ``u`` bits are reset instead and nothing is allocated.

Because the prediction depends only on control flow — never on previous
values of the same instruction — VTAGE predicts back-to-back occurrences of
an instruction seamlessly and its table lookup may span several cycles
(Fetch to Dispatch), permitting very large tables (Section 3.2).
"""

from __future__ import annotations

from repro.core.confidence import ConfidencePolicy
from repro.predictors.base import Prediction, PredictionContext, ValuePredictor
from repro.util.bits import MASK64, fold_value
from repro.util.hashing import (
    _KEY_CACHE,
    _MIX1,
    _MIX2,
    TAG_KEY_MULT,
    scrambled_key,
    table_index,
    tag_hash,
)
from repro.util.history import compressed_bits
from repro.util.lfsr import GaloisLFSR

_VALUE_BITS = 64
_USEFUL_BITS = 1

#: Per-component position-memo bound; cleared wholesale when exceeded.
_MEMO_LIMIT = 1 << 15

#: Geometric history lengths of the paper's 6 tagged components (Table 1).
PAPER_HISTORY_LENGTHS = (2, 4, 8, 16, 32, 64)


class _TaggedComponent:
    """One tagged VTAGE component."""

    __slots__ = (
        "rank",
        "entries",
        "index_bits",
        "index_mask",
        "tag_bits",
        "tag_mask",
        "history_length",
        "tags",
        "values",
        "conf",
        "useful",
        "memo",
    )

    def __init__(self, rank: int, entries: int, tag_bits: int, history_length: int):
        self.rank = rank
        self.entries = entries
        self.index_bits = entries.bit_length() - 1
        self.index_mask = entries - 1
        self.tag_bits = tag_bits
        self.tag_mask = (1 << tag_bits) - 1
        self.history_length = history_length
        self.tags = [-1] * entries
        self.values = [0] * entries
        self.conf = [0] * entries
        self.useful = [0] * entries
        # (key << 26 | compressed) -> (index, tag); see branch/tage.py.
        self.memo: dict[int, tuple[int, int]] = {}

    def compress_context(self, ctx: PredictionContext) -> int:
        """Reference compressed-context computation (executable spec for the
        incremental registers in :mod:`repro.util.history`)."""
        hist = ctx.ghist & ((1 << self.history_length) - 1)
        # Use up to 16 bits of path history, as TAGE-family predictors do.
        path_bits = min(self.history_length, 16)
        path = ctx.path & ((1 << path_bits) - 1)
        return fold_value(hist, 16) ^ (path << 1) ^ (self.history_length << 17)

    def index_and_tag(self, key: int, ctx: PredictionContext) -> tuple[int, int]:
        """Reference from-scratch position; :meth:`VTAGEPredictor.lookup`
        inlines the same arithmetic on the incremental fast path."""
        compressed = self.compress_context(ctx)
        idx = table_index(key, self.index_bits, extra=compressed)
        tag = tag_hash(key, self.tag_bits, extra=compressed)
        return idx, tag

    def storage_bits(self, conf_bits: int) -> int:
        per_entry = _VALUE_BITS + self.tag_bits + conf_bits + _USEFUL_BITS
        return self.entries * per_entry


class VTAGEPredictor(ValuePredictor):
    """The (1+N)-component VTAGE predictor of Section 6."""

    name = "VTAGE"

    def __init__(
        self,
        base_entries: int = 8192,
        tagged_entries: int = 1024,
        history_lengths: tuple[int, ...] = PAPER_HISTORY_LENGTHS,
        base_tag_bits: int = 12,
        confidence: ConfidencePolicy | None = None,
        lfsr: GaloisLFSR | None = None,
    ):
        if base_entries <= 0 or base_entries & (base_entries - 1):
            raise ValueError("base entry count must be a positive power of two")
        if tagged_entries <= 0 or tagged_entries & (tagged_entries - 1):
            raise ValueError("tagged entry count must be a positive power of two")
        if list(history_lengths) != sorted(history_lengths) or len(
            set(history_lengths)
        ) != len(history_lengths):
            raise ValueError("history lengths must be strictly increasing")
        self.confidence = confidence if confidence is not None else ConfidencePolicy()
        self._is_confident = self.confidence.is_confident
        # When the policy uses the stock saturation test, inline it as a
        # threshold compare (FPC/Wide only change the *transition* rules).
        self._conf_threshold = (
            self.confidence.max_level
            if type(self.confidence).is_confident is ConfidencePolicy.is_confident
            else None
        )
        self._on_correct = self.confidence.on_correct
        self._on_incorrect = self.confidence.on_incorrect
        self._lfsr = lfsr if lfsr is not None else GaloisLFSR(width=16, seed=0xBEEF)
        # Base component: a tagless LVP table (value + confidence only).
        self.base_entries = base_entries
        self._base_index_bits = base_entries.bit_length() - 1
        self._base_index_mask = base_entries - 1
        self._base_values = [0] * base_entries
        self._base_conf = [0] * base_entries
        # Tagged components; rank 1 uses the shortest history (Table 1:
        # "Tag = 12 + rank" bits).
        self.components = [
            _TaggedComponent(
                rank=rank,
                entries=tagged_entries,
                tag_bits=base_tag_bits + rank,
                history_length=length,
            )
            for rank, length in enumerate(history_lengths, start=1)
        ]
        self._lengths = tuple(history_lengths)
        self.max_history = max(history_lengths)
        # Shift placing the key above the compressed-context field in the
        # per-component memo keys (collision-free for any history length).
        self._mkey_shift = compressed_bits(self.max_history)
        # Whole-vector position memo: every component position is a pure
        # function of (key, low-64 ghist, low-16 path) — see the fold
        # horizon in util/history.py — so one dict hit replaces the whole
        # per-component hashing loop for recurring (key, history) pairs.
        # Entries are mutable [positions, tags_generation, provider, alt]
        # records: the provider scan is also skipped while the component
        # tag arrays (mutated only on allocation) are unchanged.
        self._pos_memo: dict[tuple[int, int, int], list] = {}
        self._tags_gen = 0

    # -- ValuePredictor interface ----------------------------------------

    def lookup(self, key: int, ctx: PredictionContext) -> Prediction | None:
        """Search all components; the longest-history hit provides.

        As in ITTAGE, a *newly allocated* provider entry (confidence 0, not
        yet proven useful) does not override the alternate prediction — the
        next-longest match, ultimately the base LVP table.  Without this
        rule, the continuous allocations triggered by hard-to-predict
        instructions shadow perfectly confident base entries and destroy
        coverage.
        """
        # Inlined scrambled_key cache probe (in-place clears keep the
        # module-level dict reference valid).
        scrambled = _KEY_CACHE.get(key)
        if scrambled is None:
            scrambled = scrambled_key(key)
        base_idx = scrambled & self._base_index_mask
        provider_rank = 0
        alt_rank = 0
        tags_gen = self._tags_gen
        sig = (key, ctx.ghist & MASK64, ctx.path & 0xFFFF)
        pos_memo = self._pos_memo
        record = pos_memo.get(sig)
        if record is None:
            folds = ctx.folds
            if folds is None:
                folds = ctx.fold_set()
            triples = folds.pairs(self._lengths, ctx.ghist, ctx.path)
            built = []
            append = built.append
            M = MASK64
            kt = -1
            j = 0
            mbase = key << self._mkey_shift
            for comp in self.components:
                memo = comp.memo
                mkey = mbase | triples[j + 2]
                pos = memo.get(mkey)
                if pos is None:
                    x = key ^ triples[j]
                    x ^= x >> 33
                    x = (x * _MIX1) & M
                    x ^= x >> 29
                    x = (x * _MIX2) & M
                    x ^= x >> 32
                    if kt < 0:
                        kt = (key * TAG_KEY_MULT) & M
                    y = kt ^ triples[j + 1]
                    y ^= y >> 33
                    y = (y * _MIX1) & M
                    y ^= y >> 29
                    y = (y * _MIX2) & M
                    y ^= y >> 32
                    pos = (x & comp.index_mask, (y >> 17) & comp.tag_mask)
                    if len(memo) >= _MEMO_LIMIT:
                        memo.clear()
                    memo[mkey] = pos
                j += 3
                append(pos)
                if comp.tags[pos[0]] == pos[1]:
                    alt_rank = provider_rank
                    provider_rank = comp.rank
            positions = tuple(built)
            if len(pos_memo) >= _MEMO_LIMIT:
                pos_memo.clear()
            pos_memo[sig] = [positions, tags_gen, provider_rank, alt_rank]
        elif record[1] == tags_gen:
            positions, __, provider_rank, alt_rank = record
        else:
            positions = record[0]
            rank = 0
            for comp in self.components:
                pos = positions[rank]
                rank += 1
                if comp.tags[pos[0]] == pos[1]:
                    alt_rank = provider_rank
                    provider_rank = rank
            record[1] = tags_gen
            record[2] = provider_rank
            record[3] = alt_rank
        if provider_rank == 0:
            value = self._base_values[base_idx]
            conf = self._base_conf[base_idx]
            effective_rank = 0
        else:
            comp = self.components[provider_rank - 1]
            idx, _ = positions[provider_rank - 1]
            newly_allocated = comp.conf[idx] == 0 and comp.useful[idx] == 0
            if newly_allocated:
                effective_rank = alt_rank
            else:
                effective_rank = provider_rank
            if effective_rank == 0:
                value = self._base_values[base_idx]
                conf = self._base_conf[base_idx]
            else:
                ecomp = self.components[effective_rank - 1]
                eidx, _ = positions[effective_rank - 1]
                value = ecomp.values[eidx]
                conf = ecomp.conf[eidx]
        threshold = self._conf_threshold
        return Prediction(
            value,
            (conf >= threshold) if threshold is not None
            else self._is_confident(conf),
            (provider_rank, effective_rank, base_idx, positions),
            self.name,
        )

    def train(self, key: int, actual: int, prediction: Prediction | None) -> None:
        if prediction is None or prediction.payload is None:
            # Lookup context unavailable (e.g. fast-forward warm-up): only
            # the base component can be trained meaningfully.
            self._train_base(self._base_index(key), actual)
            return
        provider_rank, effective_rank, base_idx, positions = prediction.payload
        final_correct = prediction.value == actual
        # Update the provider entry against its own prediction.
        if provider_rank == 0:
            # Inlined _train_base (the hot path: base provides most
            # predictions once the tagged components settle).
            base_values = self._base_values
            base_conf = self._base_conf
            if base_values[base_idx] == actual:
                base_conf[base_idx] = self._on_correct(base_conf[base_idx])
            else:
                if base_conf[base_idx] == 0:
                    base_values[base_idx] = actual
                base_conf[base_idx] = self._on_incorrect(base_conf[base_idx])
        else:
            comp = self.components[provider_rank - 1]
            idx, _ = positions[provider_rank - 1]
            provider_was_weak = comp.conf[idx] == 0
            self._train_tagged(comp, idx, actual)
            # When the provider is weak (newly allocated or recently wrong),
            # keep the alternate/base learning so the safety net stays warm
            # while tagged entries churn — the ITTAGE weak-provider
            # alt-update rule.
            if provider_was_weak:
                if effective_rank not in (0, provider_rank):
                    acomp = self.components[effective_rank - 1]
                    aidx, _ = positions[effective_rank - 1]
                    self._train_tagged(acomp, aidx, actual)
                self._train_base(base_idx, actual)
        if not final_correct:
            self._allocate(provider_rank, positions, actual)

    def on_squash(self) -> None:
        # VTAGE holds no per-instruction speculative value state; nothing to
        # repair beyond the branch history, which the front-end owns.
        return

    def storage_bits(self) -> int:
        conf_bits = self.confidence.storage_bits()
        base = self.base_entries * (_VALUE_BITS + conf_bits)
        tagged = sum(comp.storage_bits(conf_bits) for comp in self.components)
        return base + tagged

    # -- internals ---------------------------------------------------------

    def _base_index(self, key: int) -> int:
        return table_index(key, self._base_index_bits)

    def _train_base(self, idx: int, actual: int) -> None:
        """Base component update: tagless LVP semantics."""
        if self._base_values[idx] == actual:
            self._base_conf[idx] = self._on_correct(self._base_conf[idx])
        else:
            if self._base_conf[idx] == 0:
                self._base_values[idx] = actual
            self._base_conf[idx] = self._on_incorrect(self._base_conf[idx])

    def _train_tagged(self, comp: _TaggedComponent, idx: int, actual: int) -> None:
        """Tagged entry update per Section 6: c++/u=1 on correct; on a
        misprediction, val replaced when c == 0, then c reset and u cleared."""
        if comp.values[idx] == actual:
            comp.conf[idx] = self._on_correct(comp.conf[idx])
            comp.useful[idx] = 1
        else:
            if comp.conf[idx] == 0:
                comp.values[idx] = actual
            comp.conf[idx] = self._on_incorrect(comp.conf[idx])
            comp.useful[idx] = 0

    def _allocate(
        self,
        provider_rank: int,
        positions: tuple[tuple[int, int], ...],
        actual: int,
    ) -> None:
        """On a misprediction, try to allocate in a longer-history component.

        Candidates are the "upper" components (rank > provider) whose
        indexed entry is not useful; one is chosen (pseudo-)randomly.  If
        every upper entry is useful, their u bits are reset and no entry is
        allocated (Section 6).
        """
        upper = [
            (comp, positions[comp.rank - 1])
            for comp in self.components
            if comp.rank > provider_rank
        ]
        if not upper:
            return
        candidates = [
            (comp, idx, tag) for comp, (idx, tag) in upper if comp.useful[idx] == 0
        ]
        if not candidates:
            for comp, (idx, _) in upper:
                comp.useful[idx] = 0
            return
        choice = self._lfsr.step() % len(candidates)
        comp, idx, tag = candidates[choice]
        comp.tags[idx] = tag
        comp.values[idx] = actual
        comp.conf[idx] = 0
        comp.useful[idx] = 0
        # Tag arrays changed: memoised provider scans are stale.
        self._tags_gen += 1

    def describe(self) -> str:
        lengths = ",".join(str(c.history_length) for c in self.components)
        return (
            f"VTAGE base {self.base_entries} + {len(self.components)} x "
            f"{self.components[0].entries} (hist {lengths}), "
            f"{self.confidence.describe()}"
        )
