"""VTAGE — the Value TAgged GEometric history length predictor (Section 6).

VTAGE is the paper's main structural contribution: a value predictor derived
from the ITTAGE indirect-branch predictor.  A (1+N)-component VTAGE consists
of:

* a tagless *base* component — an LVP table indexed by instruction address
  only — and
* N *tagged* components, each indexed by a hash of the instruction address
  with a different number of bits of the global branch history (plus path
  history).  The history lengths form a geometric series (2, 4, 8, ... for
  the paper's 6-component configuration, Table 1).

An entry of a tagged component holds a partial tag (12 + rank bits), a 1-bit
usefulness counter ``u``, a full 64-bit value ``val`` and a 3-bit
confidence/hysteresis counter ``c``.  At prediction time all components are
searched in parallel; the matching component with the longest history — the
*provider* — supplies the prediction, which is used only if ``c`` is
saturated (this confidence gating is the main difference from ITTAGE).

Update policy (at commit, only the provider is updated):

* correct:   ``c++`` (saturating, possibly probabilistic under FPC), ``u = 1``;
* incorrect: ``val`` replaced if ``c == 0``; ``c = 0``; ``u = 0``; and a new
  entry is allocated in a randomly chosen not-useful (``u == 0``) component
  using a longer history than the provider.  If all upper components are
  useful, their ``u`` bits are reset instead and nothing is allocated.

Because the prediction depends only on control flow — never on previous
values of the same instruction — VTAGE predicts back-to-back occurrences of
an instruction seamlessly and its table lookup may span several cycles
(Fetch to Dispatch), permitting very large tables (Section 3.2).
"""

from __future__ import annotations

from repro.core.confidence import ConfidencePolicy
from repro.predictors.base import Prediction, PredictionContext, ValuePredictor
from repro.util.bits import fold_value
from repro.util.hashing import table_index, tag_hash
from repro.util.lfsr import GaloisLFSR

_VALUE_BITS = 64
_USEFUL_BITS = 1

#: Geometric history lengths of the paper's 6 tagged components (Table 1).
PAPER_HISTORY_LENGTHS = (2, 4, 8, 16, 32, 64)


class _TaggedComponent:
    """One tagged VTAGE component."""

    __slots__ = (
        "rank",
        "entries",
        "index_bits",
        "tag_bits",
        "history_length",
        "tags",
        "values",
        "conf",
        "useful",
    )

    def __init__(self, rank: int, entries: int, tag_bits: int, history_length: int):
        self.rank = rank
        self.entries = entries
        self.index_bits = entries.bit_length() - 1
        self.tag_bits = tag_bits
        self.history_length = history_length
        self.tags = [-1] * entries
        self.values = [0] * entries
        self.conf = [0] * entries
        self.useful = [0] * entries

    def compress_context(self, ctx: PredictionContext) -> int:
        """Mix the relevant slice of global/path history into one integer."""
        hist = ctx.ghist & ((1 << self.history_length) - 1)
        # Use up to 16 bits of path history, as TAGE-family predictors do.
        path_bits = min(self.history_length, 16)
        path = ctx.path & ((1 << path_bits) - 1)
        return fold_value(hist, 16) ^ (path << 1) ^ (self.history_length << 17)

    def index_and_tag(self, key: int, ctx: PredictionContext) -> tuple[int, int]:
        compressed = self.compress_context(ctx)
        idx = table_index(key, self.index_bits, extra=compressed)
        tag = tag_hash(key, self.tag_bits, extra=compressed)
        return idx, tag

    def storage_bits(self, conf_bits: int) -> int:
        per_entry = _VALUE_BITS + self.tag_bits + conf_bits + _USEFUL_BITS
        return self.entries * per_entry


class VTAGEPredictor(ValuePredictor):
    """The (1+N)-component VTAGE predictor of Section 6."""

    name = "VTAGE"

    def __init__(
        self,
        base_entries: int = 8192,
        tagged_entries: int = 1024,
        history_lengths: tuple[int, ...] = PAPER_HISTORY_LENGTHS,
        base_tag_bits: int = 12,
        confidence: ConfidencePolicy | None = None,
        lfsr: GaloisLFSR | None = None,
    ):
        if base_entries <= 0 or base_entries & (base_entries - 1):
            raise ValueError("base entry count must be a positive power of two")
        if tagged_entries <= 0 or tagged_entries & (tagged_entries - 1):
            raise ValueError("tagged entry count must be a positive power of two")
        if list(history_lengths) != sorted(history_lengths) or len(
            set(history_lengths)
        ) != len(history_lengths):
            raise ValueError("history lengths must be strictly increasing")
        self.confidence = confidence if confidence is not None else ConfidencePolicy()
        self._lfsr = lfsr if lfsr is not None else GaloisLFSR(width=16, seed=0xBEEF)
        # Base component: a tagless LVP table (value + confidence only).
        self.base_entries = base_entries
        self._base_index_bits = base_entries.bit_length() - 1
        self._base_values = [0] * base_entries
        self._base_conf = [0] * base_entries
        # Tagged components; rank 1 uses the shortest history (Table 1:
        # "Tag = 12 + rank" bits).
        self.components = [
            _TaggedComponent(
                rank=rank,
                entries=tagged_entries,
                tag_bits=base_tag_bits + rank,
                history_length=length,
            )
            for rank, length in enumerate(history_lengths, start=1)
        ]
        self.max_history = max(history_lengths)

    # -- ValuePredictor interface ----------------------------------------

    def lookup(self, key: int, ctx: PredictionContext) -> Prediction | None:
        """Search all components; the longest-history hit provides.

        As in ITTAGE, a *newly allocated* provider entry (confidence 0, not
        yet proven useful) does not override the alternate prediction — the
        next-longest match, ultimately the base LVP table.  Without this
        rule, the continuous allocations triggered by hard-to-predict
        instructions shadow perfectly confident base entries and destroy
        coverage.
        """
        base_idx = self._base_index(key)
        provider_rank = 0
        alt_rank = 0
        positions = []
        for comp in self.components:
            idx, tag = comp.index_and_tag(key, ctx)
            positions.append((idx, tag))
            if comp.tags[idx] == tag:
                alt_rank = provider_rank
                provider_rank = comp.rank
        if provider_rank == 0:
            value = self._base_values[base_idx]
            conf = self._base_conf[base_idx]
            effective_rank = 0
        else:
            comp = self.components[provider_rank - 1]
            idx, _ = positions[provider_rank - 1]
            newly_allocated = comp.conf[idx] == 0 and comp.useful[idx] == 0
            if newly_allocated:
                effective_rank = alt_rank
            else:
                effective_rank = provider_rank
            if effective_rank == 0:
                value = self._base_values[base_idx]
                conf = self._base_conf[base_idx]
            else:
                ecomp = self.components[effective_rank - 1]
                eidx, _ = positions[effective_rank - 1]
                value = ecomp.values[eidx]
                conf = ecomp.conf[eidx]
        return Prediction(
            value=value,
            confident=self.confidence.is_confident(conf),
            payload=(provider_rank, effective_rank, base_idx, tuple(positions)),
            source=self.name,
        )

    def train(self, key: int, actual: int, prediction: Prediction | None) -> None:
        if prediction is None or prediction.payload is None:
            # Lookup context unavailable (e.g. fast-forward warm-up): only
            # the base component can be trained meaningfully.
            self._train_base(self._base_index(key), actual)
            return
        provider_rank, effective_rank, base_idx, positions = prediction.payload
        final_correct = prediction.value == actual
        # Update the provider entry against its own prediction.
        if provider_rank == 0:
            self._train_base(base_idx, actual)
        else:
            comp = self.components[provider_rank - 1]
            idx, _ = positions[provider_rank - 1]
            provider_was_weak = comp.conf[idx] == 0
            self._train_tagged(comp, idx, actual)
            # When the provider is weak (newly allocated or recently wrong),
            # keep the alternate/base learning so the safety net stays warm
            # while tagged entries churn — the ITTAGE weak-provider
            # alt-update rule.
            if provider_was_weak:
                if effective_rank not in (0, provider_rank):
                    acomp = self.components[effective_rank - 1]
                    aidx, _ = positions[effective_rank - 1]
                    self._train_tagged(acomp, aidx, actual)
                self._train_base(base_idx, actual)
        if not final_correct:
            self._allocate(provider_rank, positions, actual)

    def on_squash(self) -> None:
        # VTAGE holds no per-instruction speculative value state; nothing to
        # repair beyond the branch history, which the front-end owns.
        return

    def storage_bits(self) -> int:
        conf_bits = self.confidence.storage_bits()
        base = self.base_entries * (_VALUE_BITS + conf_bits)
        tagged = sum(comp.storage_bits(conf_bits) for comp in self.components)
        return base + tagged

    # -- internals ---------------------------------------------------------

    def _base_index(self, key: int) -> int:
        return table_index(key, self._base_index_bits)

    def _train_base(self, idx: int, actual: int) -> None:
        """Base component update: tagless LVP semantics."""
        if self._base_values[idx] == actual:
            self._base_conf[idx] = self.confidence.on_correct(self._base_conf[idx])
        else:
            if self._base_conf[idx] == 0:
                self._base_values[idx] = actual
            self._base_conf[idx] = self.confidence.on_incorrect(self._base_conf[idx])

    def _train_tagged(self, comp: _TaggedComponent, idx: int, actual: int) -> None:
        """Tagged entry update per Section 6: c++/u=1 on correct; on a
        misprediction, val replaced when c == 0, then c reset and u cleared."""
        if comp.values[idx] == actual:
            comp.conf[idx] = self.confidence.on_correct(comp.conf[idx])
            comp.useful[idx] = 1
        else:
            if comp.conf[idx] == 0:
                comp.values[idx] = actual
            comp.conf[idx] = self.confidence.on_incorrect(comp.conf[idx])
            comp.useful[idx] = 0

    def _allocate(
        self,
        provider_rank: int,
        positions: tuple[tuple[int, int], ...],
        actual: int,
    ) -> None:
        """On a misprediction, try to allocate in a longer-history component.

        Candidates are the "upper" components (rank > provider) whose
        indexed entry is not useful; one is chosen (pseudo-)randomly.  If
        every upper entry is useful, their u bits are reset and no entry is
        allocated (Section 6).
        """
        upper = [
            (comp, positions[comp.rank - 1])
            for comp in self.components
            if comp.rank > provider_rank
        ]
        if not upper:
            return
        candidates = [
            (comp, idx, tag) for comp, (idx, tag) in upper if comp.useful[idx] == 0
        ]
        if not candidates:
            for comp, (idx, _) in upper:
                comp.useful[idx] = 0
            return
        choice = self._lfsr.step() % len(candidates)
        comp, idx, tag = candidates[choice]
        comp.tags[idx] = tag
        comp.values[idx] = actual
        comp.conf[idx] = 0
        comp.useful[idx] = 0

    def describe(self) -> str:
        lengths = ",".join(str(c.history_length) for c in self.components)
        return (
            f"VTAGE base {self.base_entries} + {len(self.components)} x "
            f"{self.components[0].entries} (hist {lengths}), "
            f"{self.confidence.describe()}"
        )
