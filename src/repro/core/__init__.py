"""The paper's primary contributions: VTAGE, FPC and the hybrid scheme.

* :class:`~repro.core.vtage.VTAGEPredictor` — the Value TAgged GEometric
  predictor (Section 6), the first value predictor indexed by global branch
  and path history.
* :class:`~repro.core.confidence.ForwardProbabilisticCounters` — FPC
  (Section 5), probabilistic 3-bit confidence counters that emulate 6/7-bit
  counters and push accuracy beyond 99.5 %.
* :class:`~repro.core.hybrid.HybridPredictor` — the simple agree-gated
  VTAGE + 2D-Stride combination of Section 7.1.2.
"""

from repro.core.confidence import (
    ConfidencePolicy,
    ForwardProbabilisticCounters,
    WideConfidence,
)
from repro.core.hybrid import HybridPredictor
from repro.core.sag import SAgConfidenceBank
from repro.core.vtage import PAPER_HISTORY_LENGTHS, VTAGEPredictor

__all__ = [
    "ConfidencePolicy",
    "ForwardProbabilisticCounters",
    "HybridPredictor",
    "PAPER_HISTORY_LENGTHS",
    "SAgConfidenceBank",
    "VTAGEPredictor",
    "WideConfidence",
]
