"""SAg confidence estimation (Burtscher & Zorn [3], Section 5).

The paper contrasts FPC against SAg: "Burtscher et al. proposed the SAg
confidence estimation scheme to assign confidence to a history of outcomes
rather than to a particular instruction.  However, this entails a second
lookup in the counter table using the outcome history retrieved in the
predictor table with the PC of the instruction."

SAg keeps, per predictor entry, a short shift register of recent
hit(1)/miss(0) outcomes; the *pattern* indexes a shared table of saturating
counters whose value gates the prediction.  Entries with the same recent
behaviour therefore share one confidence estimate, converging much faster
than per-entry counters at the cost of the second lookup (the complexity
argument that motivates FPC).

This implementation exposes the same ``on_correct/on_incorrect/
is_confident`` surface as the other policies, but it is stateful per key,
so predictors use it through :class:`SAgConfidenceBank` rather than the
plain :class:`~repro.core.confidence.ConfidencePolicy` protocol.
"""

from __future__ import annotations


class SAgConfidenceBank:
    """Shared-pattern confidence: per-key outcome history + global counters."""

    def __init__(
        self,
        history_bits: int = 8,
        counter_bits: int = 4,
        threshold: int | None = None,
    ):
        if history_bits <= 0 or history_bits > 20:
            raise ValueError("history width must be in 1..20")
        if counter_bits <= 0:
            raise ValueError("counter width must be positive")
        self.history_bits = history_bits
        self.counter_bits = counter_bits
        self.counter_max = (1 << counter_bits) - 1
        self.threshold = threshold if threshold is not None else self.counter_max
        self._histories: dict[int, int] = {}
        self._counters = [0] * (1 << history_bits)
        self._mask = (1 << history_bits) - 1

    def is_confident(self, key: int) -> bool:
        """Gate a prediction for *key* on its outcome-pattern counter."""
        pattern = self._histories.get(key, 0)
        return self._counters[pattern] >= self.threshold

    def record(self, key: int, correct: bool) -> None:
        """Update both the shared counter and the per-key history."""
        pattern = self._histories.get(key, 0)
        if correct:
            if self._counters[pattern] < self.counter_max:
                self._counters[pattern] += 1
        else:
            self._counters[pattern] = 0
        self._histories[key] = ((pattern << 1) | (1 if correct else 0)) & self._mask

    def storage_bits(self, tracked_entries: int) -> int:
        """History register per predictor entry + the shared counter table."""
        return (
            tracked_entries * self.history_bits
            + len(self._counters) * self.counter_bits
        )
