"""Confidence estimation policies, including Forward Probabilistic Counters.

Section 5 of the paper: every predictor entry carries a 3-bit confidence
counter; the prediction is used only when the counter is saturated, and the
counter is reset on each misprediction.  The paper's first contribution is
the observation that widening the counters (6-7 bits) — or, equivalently and
much cheaper, making the *forward* transitions of a 3-bit counter
probabilistic (FPC) — pushes accuracy above 99.5 % at a modest coverage
cost, which in turn makes squash-at-commit recovery viable.

A :class:`ConfidencePolicy` mediates all counter transitions so predictor
entries only need to store an integer level.
"""

from __future__ import annotations

from repro.util.lfsr import GaloisLFSR


class ConfidencePolicy:
    """Base policy: an n-bit saturating counter, +1 on correct, reset on wrong.

    This is the paper's baseline scheme ("3-bit confidence counter per entry
    that is reset on each misprediction leads to an accuracy in the 95-99 %
    range").
    """

    def __init__(self, bits: int = 3):
        if bits <= 0:
            raise ValueError("counter width must be positive")
        self.bits = bits
        self.max_level = (1 << bits) - 1

    def on_correct(self, level: int) -> int:
        """Counter transition after a correct prediction."""
        if level < self.max_level:
            return level + 1
        return level

    def on_incorrect(self, level: int) -> int:
        """Counter transition after a misprediction: reset."""
        return 0

    def is_confident(self, level: int) -> bool:
        """A prediction is used only when the counter is saturated."""
        return level >= self.max_level

    def storage_bits(self) -> int:
        """Bits of storage one counter instance occupies."""
        return self.bits

    def describe(self) -> str:
        return f"{self.bits}-bit saturating"


class WideConfidence(ConfidencePolicy):
    """Full-width wide counter (6 or 7 bits).

    "We actually found that simply using wider counters (e.g. 6 or 7 bits)
    leads to much more accurate predictors while the prediction coverage is
    only reduced by a fraction."  FPC mimics this behaviour with 3 bits.
    """

    def __init__(self, bits: int = 7):
        super().__init__(bits=bits)

    def describe(self) -> str:
        return f"{self.bits}-bit wide saturating"


class ForwardProbabilisticCounters(ConfidencePolicy):
    """FPC: 3-bit counters whose increments fire probabilistically.

    ``probability_log2[k]`` is the base-2 logarithm of the inverse
    probability of the transition from level ``k`` to ``k + 1``; e.g. the
    paper's squash-at-commit vector
    ``v = {1, 1/16, 1/16, 1/16, 1/16, 1/32, 1/32}`` is expressed as
    ``(0, 4, 4, 4, 4, 5, 5)``.  The pseudo-random source is a simple LFSR,
    exactly as in Section 5.
    """

    #: Paper vector for pipeline squashing at commit (mimics 7-bit counters).
    SQUASH_VECTOR = (0, 4, 4, 4, 4, 5, 5)
    #: Paper vector for selective reissue (mimics 6-bit counters).
    REISSUE_VECTOR = (0, 3, 3, 3, 3, 4, 4)

    def __init__(
        self,
        probability_log2: tuple[int, ...] = SQUASH_VECTOR,
        bits: int = 3,
        lfsr: GaloisLFSR | None = None,
    ):
        super().__init__(bits=bits)
        if len(probability_log2) != self.max_level:
            raise ValueError(
                f"need exactly {self.max_level} transition probabilities "
                f"for a {bits}-bit counter, got {len(probability_log2)}"
            )
        self.probability_log2 = tuple(probability_log2)
        self.lfsr = lfsr if lfsr is not None else GaloisLFSR()

    @classmethod
    def for_squash(cls, lfsr: GaloisLFSR | None = None) -> "ForwardProbabilisticCounters":
        """The vector the paper uses with squash-at-commit recovery."""
        return cls(cls.SQUASH_VECTOR, lfsr=lfsr)

    @classmethod
    def for_reissue(cls, lfsr: GaloisLFSR | None = None) -> "ForwardProbabilisticCounters":
        """The vector the paper uses with selective-reissue recovery."""
        return cls(cls.REISSUE_VECTOR, lfsr=lfsr)

    def on_correct(self, level: int) -> int:
        if level >= self.max_level:
            return level
        if self.lfsr.chance(self.probability_log2[level]):
            return level + 1
        return level

    def effective_counter_bits(self) -> int:
        """Width of the full counter this FPC configuration emulates.

        The expected number of correct predictions needed to saturate equals
        ``sum(2**p for p in probability_log2)``; a full counter of width w
        needs ``2**w - 1`` increments, so the emulated width is the nearest
        w with ``2**w - 1 ~= expected`` (the paper's squash vector expects
        129 steps, mimicking 7-bit counters).
        """
        import math

        expected_steps = sum(1 << p for p in self.probability_log2)
        return round(math.log2(expected_steps + 1))

    def describe(self) -> str:
        probs = ", ".join(
            "1" if p == 0 else f"1/{1 << p}" for p in self.probability_log2
        )
        return f"{self.bits}-bit FPC {{{probs}}}"
