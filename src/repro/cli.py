"""Command-line interface.

Usage examples::

    python -m repro.cli run h264ref --predictor vtage-2dstride
    python -m repro.cli -j 4 figure 4 --uops 8000 --warmup 4000
    python -m repro.cli table 1
    python -m repro.cli campaign run fig4 --checkpoint-dir runs/
    python -m repro.cli campaign status --checkpoint-dir runs/
    python -m repro.cli campaign resume fig4 --checkpoint-dir runs/
    python -m repro.cli cache show
    python -m repro.cli cache clear
    python -m repro.cli list

All simulations go through the experiment engine: ``--jobs/-j`` (or the
``REPRO_JOBS`` environment variable) selects how many worker processes run
the job batches, and ``REPRO_CACHE_DIR`` (or ``--cache-dir``) enables the
persistent result cache that ``cache show``/``cache clear`` manage.
``campaign`` commands execute whole declarative sweeps with an on-disk
journal (``--checkpoint-dir`` or ``REPRO_CHECKPOINT_DIR``): a killed run
resumes from the journal with a bit-identical result set.  Results are
bit-identical whatever the parallelism, cache or checkpoint state.

The full reference lives in ``docs/cli.md``, regenerated from these
parsers by ``python -m repro.docs`` (CI fails on drift).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.engine.api import configure_default_engine, default_engine
from repro.engine.cache import CACHE_DIR_ENV
from repro.engine.campaign import progress_printer, run_campaign
from repro.engine.checkpoint import (
    CHECKPOINT_DIR_ENV,
    CampaignJournal,
    JournalError,
    default_checkpoint_dir,
)
from repro.engine.executors import JOBS_ENV
from repro.experiments import figures, tables
from repro.experiments.campaigns import CAMPAIGNS
from repro.experiments.runner import (
    DEFAULT_MEASURE,
    DEFAULT_WARMUP,
    PREDICTOR_NAMES,
    baseline_result,
    run_workload,
)
from repro.workloads.catalog import ALL_WORKLOADS, WORKLOADS, known_workload

_FIGURES = {
    "1": figures.figure1,
    "3": figures.figure3,
    "4": figures.figure4,
    "5": figures.figure5,
    "6": figures.figure6,
    "7": figures.figure7,
}
_TABLES = {"1": tables.table1, "2": tables.table2, "3": tables.table3}


def _workload_name(name: str) -> str:
    if not known_workload(name):
        raise argparse.ArgumentTypeError(
            f"unknown workload {name!r} (catalog names are listed by "
            "'repro list'; scenarios look like scenario-c4-e25-l90)"
        )
    return name


def _parse_workloads(raw: str | None) -> tuple[str, ...] | None:
    """Comma-separated workloads: catalog names or ``scenario-c*-e*-l*``."""
    if raw is None:
        return None
    names = tuple(name.strip() for name in raw.split(",") if name.strip())
    if not names:
        raise SystemExit(f"--workloads got no workload names: {raw!r}")
    unknown = [n for n in names if not known_workload(n)]
    if unknown:
        raise SystemExit(f"unknown workloads: {', '.join(unknown)}")
    return names


def cmd_run(args: argparse.Namespace) -> int:
    result = run_workload(args.workload, args.predictor, n_uops=args.uops,
                          warmup=args.warmup, recovery=args.recovery,
                          fpc=not args.no_fpc)
    print(result.summary_line())
    if args.predictor != "none":
        base = baseline_result(args.workload, n_uops=args.uops,
                               warmup=args.warmup)
        print(f"speedup over no-VP baseline: {result.speedup_over(base):.3f}x")
    return 0


def cmd_table(args: argparse.Namespace) -> int:
    print(_TABLES[args.which]())
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    fn = _FIGURES[args.which]
    kwargs = {"workloads": _parse_workloads(args.workloads) or ALL_WORKLOADS}
    if args.which != "1":
        kwargs.update(n_uops=args.uops, warmup=args.warmup)
    else:
        kwargs.update(n_uops=args.uops)
    fig = fn(**kwargs)
    print(fig.text)
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    print("predictors:", ", ".join(PREDICTOR_NAMES))
    print()
    print("workloads (Table 3):")
    for spec in WORKLOADS:
        print(f"  {spec.name:<10} {spec.spec_name:<12} {spec.suite:<4} {spec.notes}")
    print()
    print("plus parameterised scenarios: scenario-c<chase>-e<entropy>-l<locality>")
    print("  (e.g. scenario-c4-e25-l90; see repro.workloads.scenarios)")
    print()
    print("campaigns (repro campaign run <name>):")
    for name, definition in CAMPAIGNS.items():
        print(f"  {name:<16} {definition.help}")
    return 0


def _checkpoint_dir(args: argparse.Namespace) -> Path | None:
    if args.checkpoint_dir:
        return Path(args.checkpoint_dir)
    return default_checkpoint_dir()


def _campaign_spec(args: argparse.Namespace):
    definition = CAMPAIGNS[args.name]
    kwargs = {}
    workloads = _parse_workloads(args.workloads)
    if workloads is not None:
        kwargs["workloads"] = workloads
    if args.uops is not None:
        kwargs["n_uops"] = args.uops
    if args.warmup is not None:
        kwargs["warmup"] = args.warmup
    return definition, definition.build(**kwargs)


def cmd_campaign(args: argparse.Namespace) -> int:
    if args.action == "list":
        for name, definition in CAMPAIGNS.items():
            print(f"{name:<16} {definition.help}")
        return 0

    directory = _checkpoint_dir(args)
    if args.action == "status":
        if directory is None:
            raise SystemExit("campaign status needs --checkpoint-dir "
                             f"(or ${CHECKPOINT_DIR_ENV})")
        paths = (sorted(directory.glob("*.jsonl"))
                 if args.name is None
                 else [directory / f"{args.name}.jsonl"])
        if not (directory.is_dir() and paths):
            print(f"no campaign journals under {directory}")
            return 0
        for path in paths:
            if not path.is_file():
                print(f"{path.stem:<16} no journal at {path}")
                continue
            info = CampaignJournal(path).describe()
            total = info["total"]
            if total:
                pct = f"{100.0 * info['done'] / total:5.1f}%"
                print(f"{info['campaign']:<16} {info['done']}/{total} "
                      f"({pct}) done — {path}")
            else:
                print(f"{path.stem:<16} unreadable journal — {path}")
            if info["corrupt_lines"]:
                print(f"{'':<16} {info['corrupt_lines']} corrupt line(s) "
                      "skipped (those jobs re-run on resume)")
        return 0

    # run / resume
    if args.chunk is not None and args.chunk < 1:
        raise SystemExit(f"--chunk must be >= 1, got {args.chunk}")
    definition, spec = _campaign_spec(args)
    journal = None
    if directory is not None:
        journal = directory / f"{spec.name}.jsonl"
    if args.action == "resume":
        if journal is None:
            raise SystemExit("campaign resume needs --checkpoint-dir "
                             f"(or ${CHECKPOINT_DIR_ENV})")
        if not journal.is_file():
            raise SystemExit(f"nothing to resume: no journal at {journal}")

    try:
        result = run_campaign(spec, journal=journal, chunk_size=args.chunk,
                              progress=progress_printer(spec.name),
                              force=args.force)
    except JournalError as exc:
        raise SystemExit(f"error: {exc}") from None
    stats = result.stats
    print(file=sys.stderr)
    print(f"campaign {spec.name}: {stats['total']} unique jobs — "
          f"{stats['from_journal']} from journal, "
          f"{stats['executed']} executed "
          f"({stats['cache_hits']} answered by the result cache)")
    if journal is not None:
        print(f"journal: {journal}")
    if args.render and definition.render is not None:
        print()
        print(definition.render(result))
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    cache = default_engine().cache
    if args.action == "show":
        stats = cache.stats()
        if stats["directory"] is None:
            print(f"persistent cache: disabled (set ${CACHE_DIR_ENV} or pass "
                  "--cache-dir to enable)")
        else:
            print(f"persistent cache: {stats['directory']}")
            print(f"  entries: {stats['disk_entries']}")
        print(f"in-process entries: {stats['memory_entries']}")
        return 0
    # clear
    removed = cache.clear(disk=True)
    where = cache.directory or "memory-only cache"
    print(f"cleared {removed} persisted result(s) from {where}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Perais & Seznec, HPCA 2014 "
                    "(VTAGE + FPC value prediction).",
    )
    parser.add_argument(
        "-j", "--jobs", type=int, default=None, metavar="N",
        help="worker processes for simulation batches "
             f"(default: ${JOBS_ENV} or 1; results are bit-identical "
             "regardless of parallelism)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist simulation results under DIR and reuse them on "
             f"later runs (default: ${CACHE_DIR_ENV} or memory-only)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="simulate one workload")
    run_p.add_argument("workload", type=_workload_name, metavar="WORKLOAD",
                       help="a Table 3 benchmark (see 'repro list') or a "
                            "scenario-c<chase>-e<entropy>-l<locality> name")
    run_p.add_argument("--predictor", default="vtage-2dstride",
                       choices=PREDICTOR_NAMES)
    run_p.add_argument("--recovery", default="squash",
                       choices=("squash", "reissue"))
    run_p.add_argument("--no-fpc", action="store_true",
                       help="use plain 3-bit confidence counters")
    run_p.add_argument("--uops", type=int, default=DEFAULT_MEASURE)
    run_p.add_argument("--warmup", type=int, default=DEFAULT_WARMUP)
    run_p.set_defaults(fn=cmd_run)

    table_p = sub.add_parser("table", help="render a paper table")
    table_p.add_argument("which", choices=sorted(_TABLES))
    table_p.set_defaults(fn=cmd_table)

    figure_p = sub.add_parser("figure", help="reproduce a paper figure")
    figure_p.add_argument("which", choices=sorted(_FIGURES))
    figure_p.add_argument("--workloads", default=None,
                          help="comma-separated subset (default: all 19)")
    figure_p.add_argument("--uops", type=int, default=DEFAULT_MEASURE)
    figure_p.add_argument("--warmup", type=int, default=DEFAULT_WARMUP)
    figure_p.set_defaults(fn=cmd_figure)

    campaign_p = sub.add_parser(
        "campaign",
        help="run, resume or inspect declarative sweep campaigns",
        description="Execute whole sweeps (figure grids, the full "
                    "reproduction, scenario explorations) as declarative "
                    "campaigns with an on-disk journal: every completed "
                    "simulation is checkpointed, and a killed run resumes "
                    "bit-identically from where it stopped.",
    )
    campaign_sub = campaign_p.add_subparsers(dest="action", required=True)

    def _campaign_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("name", choices=sorted(CAMPAIGNS),
                       help="registered campaign")
        p.add_argument("--workloads", default=None,
                       help="comma-separated workload subset (catalog or "
                            "scenario-c*-e*-l* names; default: the "
                            "campaign's own grid)")
        p.add_argument("--uops", type=int, default=None,
                       help="measured µops per job (default: the "
                            "campaign's own slice)")
        p.add_argument("--warmup", type=int, default=None,
                       help="warm-up µops per job (default: the "
                            "campaign's own slice)")
        p.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                       help="journal completed jobs under DIR/<name>.jsonl "
                            f"(default: ${CHECKPOINT_DIR_ENV} or no journal)")
        p.add_argument("--chunk", type=int, default=None, metavar="N",
                       help="jobs per checkpointed batch (default: 1 "
                            "serial, 4x workers with a pool)")
        p.add_argument("--force", action="store_true",
                       help="rotate aside a journal that belongs to a "
                            "different job set and start over")
        p.add_argument("--render", action="store_true",
                       help="print the campaign's figure/table after the run")

    campaign_run_p = campaign_sub.add_parser(
        "run", help="execute a campaign (resumes automatically if a "
                    "journal exists)")
    _campaign_common(campaign_run_p)
    campaign_run_p.set_defaults(fn=cmd_campaign)

    campaign_resume_p = campaign_sub.add_parser(
        "resume", help="like run, but requires an existing journal")
    _campaign_common(campaign_resume_p)
    campaign_resume_p.set_defaults(fn=cmd_campaign)

    campaign_status_p = campaign_sub.add_parser(
        "status", help="show journal completion for one or all campaigns")
    campaign_status_p.add_argument("name", nargs="?", default=None,
                                   help="campaign name (default: every "
                                        "journal in the checkpoint dir)")
    campaign_status_p.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help=f"journal directory (default: ${CHECKPOINT_DIR_ENV})")
    campaign_status_p.set_defaults(fn=cmd_campaign)

    campaign_list_p = campaign_sub.add_parser(
        "list", help="list registered campaigns")
    campaign_list_p.set_defaults(fn=cmd_campaign)

    cache_p = sub.add_parser(
        "cache",
        help="inspect or clear the persistent result cache",
        description="Manage the engine's result cache.  'show' prints the "
                    "cache location and entry counts; 'clear' removes every "
                    "persisted result.",
    )
    cache_p.add_argument("action", choices=("show", "clear"))
    cache_p.set_defaults(fn=cmd_cache)

    list_p = sub.add_parser("list", help="list predictors and workloads")
    list_p.set_defaults(fn=cmd_list)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    configure_default_engine(jobs=args.jobs, cache_dir=args.cache_dir)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
