"""Command-line interface.

Usage examples::

    python -m repro.cli run h264ref --predictor vtage-2dstride
    python -m repro.cli -j 4 figure 4 --uops 8000 --warmup 4000
    python -m repro.cli table 1
    python -m repro.cli campaign run fig4 --checkpoint-dir runs/
    python -m repro.cli campaign status --checkpoint-dir runs/
    python -m repro.cli campaign resume fig4 --checkpoint-dir runs/
    python -m repro.cli cache show
    python -m repro.cli cache clear
    python -m repro.cli list

    # The service: one daemon, many clients, one shared hot cache.
    python -m repro.cli -j 4 serve --socket /tmp/repro.sock --journal svc.jsonl
    python -m repro.cli submit --workloads gcc,gzip --predictors lvp,vtage \
        --socket /tmp/repro.sock
    python -m repro.cli status --socket /tmp/repro.sock
    python -m repro.cli campaign run fig4 --backend service --socket /tmp/repro.sock

    # The cluster: N TCP shards, jobs routed by consistent-hashed content key.
    python -m repro.cli -j 2 cluster serve --listen 127.0.0.1:7101
    python -m repro.cli -j 2 cluster serve --listen 127.0.0.1:7102 \
        --peer 127.0.0.1:7101
    python -m repro.cli cluster status --shards 127.0.0.1:7101,127.0.0.1:7102
    python -m repro.cli campaign run fig4 --backend cluster \
        --shards 127.0.0.1:7101,127.0.0.1:7102

All simulations go through the experiment engine: ``--jobs/-j`` (or the
``REPRO_JOBS`` environment variable) selects how many worker processes run
the job batches, and ``REPRO_CACHE_DIR`` (or ``--cache-dir``) enables the
persistent result cache that ``cache show``/``cache clear`` manage.
``campaign`` commands execute whole declarative sweeps with an on-disk
journal (``--checkpoint-dir`` or ``REPRO_CHECKPOINT_DIR``): a killed run
resumes from the journal with a bit-identical result set.  ``serve``
turns the same engine into a persistent daemon: ``submit``/``status``/
``results`` talk to it over a Unix socket, and ``campaign run --backend
service`` routes whole sweeps through it.  Results are bit-identical
whatever the parallelism, cache, checkpoint or backend.

The full reference lives in ``docs/cli.md``, regenerated from these
parsers by ``python -m repro.docs`` (CI fails on drift).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.engine.api import (
    configure_default_engine,
    default_engine,
    set_default_engine,
)
from repro.engine.cache import CACHE_DIR_ENV
from repro.engine.campaign import (
    BACKENDS,
    engine_for_backend,
    progress_printer,
    run_campaign,
)
from repro.engine.checkpoint import (
    CHECKPOINT_DIR_ENV,
    CampaignJournal,
    JournalError,
    default_checkpoint_dir,
)
from repro.engine.client import ServiceClient, ServiceError
from repro.engine.cluster import SHARDS_ENV, ShardRouter
from repro.engine.executors import JOBS_ENV
from repro.engine.faults import FAULTS_ENV, FaultPlan, FaultSpecError
from repro.engine.job import SimJob
from repro.engine.queue import JOB_TIMEOUT_ENV, QUEUE_BOUND_ENV
from repro.engine.service import (
    DEFAULT_HEARTBEAT,
    DEFAULT_WARM_PUSH_BUDGET,
    HEARTBEAT_ENV,
    JOURNAL_DIR_ENV,
    SOCKET_ENV,
    TOKEN_ENV,
    WARM_PUSH_BUDGET_ENV,
    run_service,
)
from repro.pipeline.fastsim import fallback_stats, kernel_mode
from repro.pipeline.result import SimResult
from repro.experiments import figures, tables
from repro.experiments.campaigns import CAMPAIGNS
from repro.experiments.runner import (
    DEFAULT_MEASURE,
    DEFAULT_WARMUP,
    PREDICTOR_NAMES,
    baseline_result,
    run_workload,
)
from repro.util import profiling
from repro.workloads.catalog import (
    ALL_WORKLOADS,
    WORKLOADS,
    build_trace,
    clear_trace_cache,
    known_workload,
    resolve_seed,
    trace_cache_stats,
)
from repro.workloads.store import TRACE_DIR_ENV, TraceStore, default_trace_store

_FIGURES = {
    "1": figures.figure1,
    "3": figures.figure3,
    "4": figures.figure4,
    "5": figures.figure5,
    "6": figures.figure6,
    "7": figures.figure7,
}
_TABLES = {"1": tables.table1, "2": tables.table2, "3": tables.table3}


def _workload_name(name: str) -> str:
    if not known_workload(name):
        raise argparse.ArgumentTypeError(
            f"unknown workload {name!r} (catalog names are listed by "
            "'repro list'; scenarios look like scenario-c4-e25-l90)"
        )
    return name


def _parse_workloads(raw: str | None) -> tuple[str, ...] | None:
    """Comma-separated workloads: catalog names or ``scenario-c*-e*-l*``."""
    if raw is None:
        return None
    names = tuple(name.strip() for name in raw.split(",") if name.strip())
    if not names:
        raise SystemExit(f"--workloads got no workload names: {raw!r}")
    unknown = [n for n in names if not known_workload(n)]
    if unknown:
        raise SystemExit(f"unknown workloads: {', '.join(unknown)}")
    return names


def _fallback_note() -> str:
    """The fast-path fallback counters, formatted for --profile output.

    ``none`` means every simulation in this process took the fast path;
    anything else names the structured reasons (and counts) runs silently
    degraded to the sequential model.  Pool-backend workers keep their own
    counters, so under ``-j N`` this reports the parent process only.
    """
    stats = fallback_stats()
    if not stats:
        return "none"
    return ",".join(f"{reason}={count}"
                    for reason, count in sorted(stats.items()))


def cmd_run(args: argparse.Namespace) -> int:
    if args.profile:
        profiling.enable()
    result = run_workload(args.workload, args.predictor, n_uops=args.uops,
                          warmup=args.warmup, recovery=args.recovery,
                          fpc=not args.no_fpc)
    print(result.summary_line())
    if args.predictor != "none":
        base = baseline_result(args.workload, n_uops=args.uops,
                               warmup=args.warmup)
        print(f"speedup over no-VP baseline: {result.speedup_over(base):.3f}x")
    if args.profile:
        profiling.disable()
        print(profiling.format_report(), file=sys.stderr)
        print(f"profile: kernel={kernel_mode()} "
              f"fastsim-fallbacks={_fallback_note()}", file=sys.stderr)
    return 0


def cmd_table(args: argparse.Namespace) -> int:
    print(_TABLES[args.which]())
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    fn = _FIGURES[args.which]
    kwargs = {"workloads": _parse_workloads(args.workloads) or ALL_WORKLOADS}
    if args.which != "1":
        kwargs.update(n_uops=args.uops, warmup=args.warmup)
    else:
        kwargs.update(n_uops=args.uops)
    fig = fn(**kwargs)
    print(fig.text)
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    print("predictors:", ", ".join(PREDICTOR_NAMES))
    print()
    print("workloads (Table 3):")
    for spec in WORKLOADS:
        print(f"  {spec.name:<10} {spec.spec_name:<12} {spec.suite:<4} {spec.notes}")
    print()
    print("plus parameterised scenarios: scenario-c<chase>-e<entropy>-l<locality>")
    print("  (e.g. scenario-c4-e25-l90; see repro.workloads.scenarios)")
    print()
    print("campaigns (repro campaign run <name>):")
    for name, definition in CAMPAIGNS.items():
        print(f"  {name:<16} {definition.help}")
    return 0


def _checkpoint_dir(args: argparse.Namespace) -> Path | None:
    if args.checkpoint_dir:
        return Path(args.checkpoint_dir)
    return default_checkpoint_dir()


def _campaign_spec(args: argparse.Namespace):
    definition = CAMPAIGNS[args.name]
    kwargs = {}
    workloads = _parse_workloads(args.workloads)
    if workloads is not None:
        kwargs["workloads"] = workloads
    if args.uops is not None:
        kwargs["n_uops"] = args.uops
    if args.warmup is not None:
        kwargs["warmup"] = args.warmup
    return definition, definition.build(**kwargs)


def cmd_campaign(args: argparse.Namespace) -> int:
    if args.action == "list":
        for name, definition in CAMPAIGNS.items():
            print(f"{name:<16} {definition.help}")
        return 0

    directory = _checkpoint_dir(args)
    if args.action == "status":
        if directory is None:
            raise SystemExit("campaign status needs --checkpoint-dir "
                             f"(or ${CHECKPOINT_DIR_ENV})")
        paths = (sorted(directory.glob("*.jsonl"))
                 if args.name is None
                 else [directory / f"{args.name}.jsonl"])
        if not (directory.is_dir() and paths):
            print(f"no campaign journals under {directory}")
            return 0
        for path in paths:
            if not path.is_file():
                print(f"{path.stem:<16} no journal at {path}")
                continue
            info = CampaignJournal(path).describe()
            total = info["total"]
            if total:
                pct = f"{100.0 * info['done'] / total:5.1f}%"
                print(f"{info['campaign']:<16} {info['done']}/{total} "
                      f"({pct}) done — {path}")
            else:
                print(f"{path.stem:<16} unreadable journal — {path}")
            if info["corrupt_lines"]:
                print(f"{'':<16} {info['corrupt_lines']} corrupt line(s) "
                      "skipped (those jobs re-run on resume)")
        return 0

    # run / resume
    if args.chunk is not None and args.chunk < 1:
        raise SystemExit(f"--chunk must be >= 1, got {args.chunk}")
    definition, spec = _campaign_spec(args)
    journal = None
    if directory is not None:
        journal = directory / f"{spec.name}.jsonl"
    if args.action == "resume":
        if journal is None:
            raise SystemExit("campaign resume needs --checkpoint-dir "
                             f"(or ${CHECKPOINT_DIR_ENV})")
        if not journal.is_file():
            raise SystemExit(f"nothing to resume: no journal at {journal}")

    if args.profile:
        profiling.enable()
    try:
        engine = engine_for_backend(args.backend, args.socket,
                                    shards=_parse_shards(args.shards),
                                    token=args.token)
        if args.backend != "local":
            if args.jobs is not None or args.cache_dir is not None:
                print("note: --jobs/--cache-dir apply to the daemon(s), "
                      "not this client; they are ignored with --backend "
                      f"{args.backend}", file=sys.stderr)
            # --render replays through the default engine's cache; make
            # the service-backed engine that default so rendering never
            # re-simulates locally what the daemon already ran.
            set_default_engine(engine)
        result = run_campaign(spec, engine=engine, journal=journal,
                              chunk_size=args.chunk,
                              progress=progress_printer(spec.name),
                              force=args.force)
    except (JournalError, ServiceError) as exc:
        raise SystemExit(f"error: {exc}") from None
    stats = result.stats
    print(file=sys.stderr)
    print(f"campaign {spec.name}: {stats['total']} unique jobs — "
          f"{stats['from_journal']} from journal, "
          f"{stats['executed']} executed "
          f"({stats['cache_hits']} answered by the result cache)")
    if journal is not None:
        print(f"journal: {journal}")
    if args.render and definition.render is not None:
        print()
        print(definition.render(result))
    if args.profile:
        profiling.disable()
        print(profiling.format_report(), file=sys.stderr)
        print(f"profile: kernel={kernel_mode()} "
              f"fastsim-fallbacks={_fallback_note()}", file=sys.stderr)
    return 0


def _trace_store(args: argparse.Namespace) -> TraceStore:
    if args.trace_dir:
        return TraceStore(args.trace_dir)
    store = default_trace_store()
    if store is None:
        raise SystemExit(
            f"the trace store needs --trace-dir (or ${TRACE_DIR_ENV})"
        )
    return store


def cmd_trace(args: argparse.Namespace) -> int:
    store = _trace_store(args)
    if args.action == "build":
        workloads = _parse_workloads(args.workloads)
        if workloads is None:
            raise SystemExit("trace build needs --workloads")
        total = args.warmup + args.uops
        for name in workloads:
            seed = resolve_seed(name, args.seed)
            if store.get(name, total, seed) is not None:
                print(f"{name:<24} {total:>8} µops seed {seed}: already stored")
                continue
            trace = build_trace(name, total, seed=args.seed, cache=False)
            store.put(trace, name, total, seed)
            print(f"{name:<24} {total:>8} µops seed {seed}: "
                  f"built and stored ({trace.nbytes / 1024:.0f} KB packed)")
        return 0
    if args.action == "ls":
        rows = store.entries()
        if args.provenance:
            rows = [r for r in rows if r["provenance"] == args.provenance]
        if not rows:
            print(f"no stored traces under {store.directory}")
            return 0
        for row in sorted(rows, key=lambda r: (r.get("name", ""),
                                               r.get("n_uops", 0))):
            print(f"{row.get('name', '?'):<24} {row.get('n_uops', 0):>8} µops"
                  f"  seed {row.get('seed', '?'):<6}"
                  f" {int(row.get('nbytes', 0)) / 1024:>9.0f} KB"
                  f"  {row['provenance']:<9}"
                  f"  {row['key'][:12]}…")
        if args.stats:
            stats = store.stats()
            print(f"total: {stats['entries']} trace(s), "
                  f"{stats['bytes'] / (1024 * 1024):.1f} MB under "
                  f"{stats['directory']}")
            print(f"  generated: {stats['generated_entries']} "
                  f"({stats['generated_bytes'] / (1024 * 1024):.1f} MB)  "
                  f"ingested: {stats['ingested_entries']} "
                  f"({stats['ingested_bytes'] / (1024 * 1024):.1f} MB)")
        return 0
    # clear
    disk = store.stats() if args.stats else None
    removed = store.clear(provenance=args.provenance)
    what = f"{args.provenance} " if args.provenance else ""
    print(f"removed {removed} stored {what}trace(s) from {store.directory}")
    if args.stats:
        cache = trace_cache_stats()
        clear_trace_cache()
        print(f"  on-disk: {disk['bytes'] / (1024 * 1024):.1f} MB reclaimed")
        print(f"  in-process LRU: {cache['entries']} entr"
              f"{'y' if cache['entries'] == 1 else 'ies'} dropped, "
              f"{cache['bytes'] / (1024 * 1024):.1f} MB charged "
              f"({cache['precompute_bytes'] / (1024 * 1024):.1f} MB "
              "precompute planes)")
    return 0


def cmd_ingest(args: argparse.Namespace) -> int:
    from repro.workloads import ingest

    store = _trace_store(args)
    failures = 0
    for path in args.files:
        try:
            trace, report = ingest.ingest_file(path, store, seed=args.seed)
        except (OSError, ingest.IngestError) as exc:
            print(f"{path}: FAILED — {exc}", file=sys.stderr)
            failures += 1
            continue
        print(f"{report.name}: {report.n_uops} µops from {path} "
              f"(seed {report.seed}, {trace.nbytes / 1024:.0f} KB packed, "
              f"{'stored' if report.stored else 'NOT stored'})")
        if report.skipped:
            print(f"  skipped {report.skipped} non-instruction line(s)")
        if report.quarantined:
            shown = report.quarantined[:args.show_quarantined]
            print(f"  quarantined {len(report.quarantined)} line(s):")
            for line_no, reason, text in shown:
                print(f"    line {line_no}: {reason}  [{text}]")
            if len(report.quarantined) > len(shown):
                print(f"    … and {len(report.quarantined) - len(shown)} more")
    return 1 if failures else 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.workloads import fuzzer

    registry = (fuzzer.CornerRegistry(args.corners) if args.corners
                else fuzzer.CornerRegistry.default())
    if args.list_corners:
        corners = registry.load()["corners"]
        if not corners:
            print(f"no registered corners under {registry.path}")
            return 0
        for name, entry in sorted(corners.items()):
            print(f"{name:<44} {entry['kind']:<18} {entry['workload']}")
            print(f"    {entry['detail']}")
            print(f"    replay: repro fuzz --replay \"{entry['spec']}\"")
        return 0
    if args.replay:
        outcome = fuzzer.replay(args.replay)
        return 1 if outcome.divergent else 0
    workloads = _parse_workloads(args.workloads)
    predictors = _parse_predictors(args.predictors) if args.predictors else None
    summary = fuzzer.run_fuzz(
        args.budget, args.seed, workloads=workloads, predictors=predictors,
        max_uops=args.max_uops, registry=registry)
    return 1 if summary["divergences"] else 0


def _parse_predictors(raw: str | None) -> tuple[str, ...]:
    """Comma-separated predictor configuration names."""
    names = tuple(name.strip() for name in (raw or "").split(",")
                  if name.strip())
    if not names:
        raise SystemExit(f"--predictors got no predictor names: {raw!r}")
    unknown = [n for n in names if n not in PREDICTOR_NAMES]
    if unknown:
        raise SystemExit(f"unknown predictors: {', '.join(unknown)} "
                         f"(pick from {', '.join(PREDICTOR_NAMES)})")
    return names


def _parse_shards(raw: str | None) -> list[str] | None:
    """Split a ``--shards`` value; ``None`` falls through to the env."""
    if raw is None:
        return None
    pieces = [piece.strip() for piece in raw.split(",") if piece.strip()]
    return pieces or None


def cmd_serve(args: argparse.Namespace) -> int:
    # main() already resolved --jobs/--cache-dir into the default engine;
    # the daemon serves from that engine's cache.
    return run_service(
        args.socket,
        workers=args.jobs,
        cache=default_engine().cache,
        journal_path=args.journal,
        max_depth=args.queue_bound,
        job_timeout=args.job_timeout,
        chaos=args.chaos,
    )


def cmd_submit(args: argparse.Namespace) -> int:
    workloads = _parse_workloads(args.workloads)
    if workloads is None:
        raise SystemExit("submit needs --workloads")
    predictors = _parse_predictors(args.predictors)
    jobs = [
        SimJob.make(workload, predictor, fpc=not args.no_fpc,
                    recovery=args.recovery, n_uops=args.uops,
                    warmup=args.warmup)
        for predictor in predictors
        for workload in workloads
    ]
    try:
        with ServiceClient(args.socket) as client:
            response = client.submit(jobs, wait=not args.no_wait)
    except ServiceError as exc:
        raise SystemExit(f"error: {exc}") from None
    summary = response["summary"]
    print(f"submitted {summary['jobs']} job(s): "
          f"{summary['cache_hits']} answered by the service cache, "
          f"{summary['coalesced']} coalesced with in-flight work, "
          f"{summary['enqueued']} newly enqueued "
          f"(ticket {response['ticket']})")
    if args.no_wait:
        where = f" --socket {args.socket}" if args.socket else ""
        print(f"poll with: repro results {response['ticket']}{where}")
        return 0
    for raw in response["results"]:
        print(SimResult.from_dict(raw).summary_line())
    return 0


def cmd_service_status(args: argparse.Namespace) -> int:
    try:
        with ServiceClient(args.socket) as client:
            server = client.ping()
            status = client.status()
    except ServiceError as exc:
        raise SystemExit(f"error: {exc}") from None
    queue = status["queue"]
    stats = queue["stats"]
    print(f"service: pid {server['pid']} on {server['socket']} "
          f"(protocol v{server['protocol']})")
    print(f"workers ({len(queue['workers'])}):")
    for worker in queue["workers"]:
        state = worker["task"] or ("idle" if worker["alive"] else "dead")
        print(f"  #{worker['id']} pid {worker['pid']}: {state}")
    print(f"queue: {queue['depth']} outstanding job(s) "
          f"({queue['pending']} waiting for a worker), "
          f"{queue['restarts']} worker restart(s)")
    print(f"lifetime: {stats['submitted']} submitted = "
          f"{stats['cache_hits']} cache hits + "
          f"{stats['coalesced']} coalesced + "
          f"{stats['executed']} executed; "
          f"{stats['requeued']} requeued, {stats['errors']} error(s)")
    traces = queue.get("traces")
    if traces:
        print(f"trace plane: {traces['segments']} shared segment(s) "
              f"({traces['bytes'] / (1024 * 1024):.1f} MB, "
              f"{traces['leased']} leased) — "
              f"{traces['materialized']} materialized, "
              f"{traces['shared']} lease(s) served, "
              f"{traces['failures']} failure(s)")
    cache = status["cache"]
    where = cache["directory"] or "memory-only"
    print(f"cache: {where} — {cache['memory_entries']} in memory, "
          f"{cache['disk_entries']} on disk")
    journal = status["journal"]
    if journal["path"]:
        print(f"journal: {journal['path']} — {journal['entries']} entries "
              f"({journal['replayed']} replayed at startup)")
    else:
        print("journal: disabled (start the service with --journal)")
    if status["tickets"]:
        print("open tickets:")
        for ticket_id, ticket in sorted(status["tickets"].items(),
                                        key=lambda kv: int(kv[0])):
            print(f"  #{ticket_id}: {ticket['done']}/{ticket['jobs']} done")
    return 0


def cmd_results(args: argparse.Namespace) -> int:
    try:
        with ServiceClient(args.socket) as client:
            response = client.results(args.ticket)
    except ServiceError as exc:
        raise SystemExit(f"error: {exc}") from None
    if response.get("pending"):
        print(f"ticket {args.ticket}: {response['done']}/{response['total']} "
              "job(s) done — still running")
        return 1
    for raw in response["results"]:
        print(SimResult.from_dict(raw).summary_line())
    return 0


def cmd_health(args: argparse.Namespace) -> int:
    try:
        with ServiceClient(args.socket, timeout=args.timeout) as client:
            health = client.health()
    except ServiceError as exc:
        print(f"unhealthy: {exc}")
        return 2
    workers = health["workers"]
    bound = health["max_depth"]
    depth = (f"{health['depth']}/{bound}" if bound
             else str(health["depth"]))
    timeout = health["job_timeout"]
    print(f"{'ok' if health['ok'] else 'unhealthy'}: pid {health['pid']}, "
          f"{workers['alive']}/{workers['total']} worker(s) alive "
          f"({workers['busy']} busy), depth {depth}, "
          f"job timeout {f'{timeout:g}s' if timeout else 'off'}")
    print(f"lifetime: {health['restarts']} worker restart(s), "
          f"{health['timeouts']} job timeout(s), "
          f"{health['rejected']} batch(es) shed as overloaded")
    degraded = health["degraded"]
    if health["degraded_mode"]:
        flags = ", ".join(f"{name}={count}"
                          for name, count in sorted(degraded.items())
                          if count)
        print(f"DEGRADED: {flags}")
    else:
        print("degraded: no (journal, cache and shm all healthy)")
    if health.get("chaos"):
        print("chaos: a fault plan is active (inspect with `repro chaos`)")
    if not health["ok"]:
        return 2
    return 1 if health["degraded_mode"] else 0


def _print_fault_plan(plan: dict) -> None:
    print(f"seed: {plan['seed']}")
    print("rules:")
    for rule in plan["rules"]:
        print(f"  {rule}")
    if plan["hits"]:
        print("site traffic (hits/fired):")
        for site in sorted(plan["hits"]):
            print(f"  {site}: {plan['hits'][site]}"
                  f"/{plan['fired'].get(site, 0)}")


def cmd_chaos(args: argparse.Namespace) -> int:
    if args.action == "check":
        try:
            plan = FaultPlan.parse(args.spec, seed=args.seed)
        except FaultSpecError as exc:
            raise SystemExit(f"bad fault spec: {exc}") from None
        print(f"valid plan ({len(plan.rules)} rule(s)); run it with:")
        print(f"  {FAULTS_ENV}='{plan.to_spec()}' "
              f"REPRO_FAULTS_SEED={plan.seed} repro serve --chaos ...")
        _print_fault_plan(plan.describe())
        return 0
    # show: query a --chaos daemon for its live plan and counters
    try:
        with ServiceClient(args.socket) as client:
            plan = client.chaos()
    except ServiceError as exc:
        raise SystemExit(f"error: {exc}") from None
    if plan is None:
        print("chaos daemon reachable, but no fault plan is active "
              f"(set ${FAULTS_ENV} before starting it)")
        return 0
    _print_fault_plan(plan)
    return 0


def cmd_cluster(args: argparse.Namespace) -> int:
    if args.action == "serve":
        # A cluster shard is the ordinary daemon on a TCP transport; the
        # shared flags (-j, --journal, --queue-bound, ...) mean the same.
        return run_service(
            None,
            workers=args.jobs,
            cache=default_engine().cache,
            journal_path=args.journal,
            max_depth=args.queue_bound,
            job_timeout=args.job_timeout,
            chaos=args.chaos,
            listen=args.listen,
            token=args.token,
            peers=args.peer or [],
            journal_dir=args.journal_dir,
            heartbeat_interval=args.heartbeat_interval,
            warm_push_budget=args.warm_push_budget,
        )
    if args.action == "soak":
        return _cmd_cluster_soak(args)
    try:
        router = ShardRouter(_parse_shards(args.shards), token=args.token)
    except ServiceError as exc:
        raise SystemExit(f"error: {exc}") from None
    if args.action == "status":
        return _print_cluster_status(router.status())
    # run: a predictors x workloads grid, routed across the shards
    workloads = _parse_workloads(args.workloads)
    if workloads is None:
        raise SystemExit("cluster run needs --workloads")
    predictors = _parse_predictors(args.predictors)
    jobs = [
        SimJob.make(workload, predictor, fpc=not args.no_fpc,
                    recovery=args.recovery, n_uops=args.uops,
                    warmup=args.warmup)
        for predictor in predictors
        for workload in workloads
    ]
    try:
        results = router.run_jobs(jobs)
    except ServiceError as exc:
        raise SystemExit(f"error: {exc}") from None
    for result in results:
        print(result.summary_line())
    stats = router.stats
    note = (f"cluster: {stats['routed_jobs']} job(s) routed across "
            f"{len(router.alive_shards())}/{len(router.ring.shards)} "
            f"shard(s)")
    if stats["failovers"]:
        note += (f"; {stats['failovers']} shard(s) dropped, "
                 f"{stats['rerouted_jobs']} job(s) re-routed")
    print(note, file=sys.stderr)
    return 0


def _cmd_cluster_soak(args: argparse.Namespace) -> int:
    """Run the self-healing soak harness (``repro cluster soak``)."""
    import json as _json
    import tempfile

    from repro.engine.soak import SoakConfig, run_soak

    config = SoakConfig(shards=args.shards, clients=args.clients,
                        batches_per_client=args.batches,
                        seed=args.seed, deadline_s=args.duration,
                        heartbeat_interval_s=args.heartbeat_interval)
    log = (lambda line: print(line, file=sys.stderr, flush=True)) \
        if not args.quiet else None
    if args.journal_dir:
        report = run_soak(config, args.journal_dir, log=log)
    else:
        with tempfile.TemporaryDirectory(prefix="repro-soak-") as scratch:
            report = run_soak(config, scratch, log=log)
    print(_json.dumps(report.to_dict(), indent=1, sort_keys=True))
    return 0 if report.passed() else 1


def cmd_bench(args: argparse.Namespace) -> int:
    """``repro bench promote``: guarded baseline promotion."""
    from repro.bench import PromoteError, promote

    try:
        promoted = promote(args.names or None, source_dir=args.source,
                           allow_loaded=args.allow_loaded)
    except PromoteError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    for name in promoted:
        print(f"promoted {name}")
    return 0


def _print_cluster_status(status: dict) -> int:
    """Render :meth:`ShardRouter.status` (exit 1 if any shard is out)."""
    ring = status["ring"]
    print(f"cluster: {ring['alive']}/{ring['shards']} shard(s) alive "
          f"({ring['replicas']} ring points per shard)")
    impaired = False
    for row in status["shards"]:
        address = row["address"]
        if row["down"]:
            note = f"shard {address}: DOWN — {row.get('reason', 'marked down')}"
            if "next_probe_in_s" in row:
                note += (f" (probation: {row.get('probe_failures', 0)} "
                         f"failed probe(s), next in "
                         f"{row['next_probe_in_s']:g}s)")
            print(note)
            impaired = True
            continue
        if "metrics" not in row:
            print(f"shard {address}: unreachable — "
                  f"{row.get('unreachable', 'no metrics')}")
            impaired = True
            continue
        metrics = row["metrics"]
        shard, queue = metrics["shard"], metrics["queue"]
        cache, peers = metrics["cache"], metrics["peers"]
        print(f"shard {address}: pid {shard['pid']}, "
              f"{shard['workers']} worker(s), up {shard['uptime_s']:.0f}s")
        print(f"  queue: {queue['depth']} deep ({queue['pending']} pending, "
              f"{queue['in_flight']} in flight), "
              f"{queue['workers_alive']} worker(s) alive, "
              f"{queue['restarts']} restart(s)")
        print(f"  cache: {cache['hits']} hit(s) / {cache['misses']} miss(es), "
              f"{cache['memory_entries']} in memory, "
              f"{cache['disk_entries']} on disk")
        print(f"  peers: {peers['configured']} configured — "
              f"{peers['hits']} hit(s), {peers['misses']} miss(es), "
              f"{peers['failures']} failure(s)")
        membership = metrics.get("membership")
        if membership is not None:
            gossip = membership["gossip"]
            print(f"  membership: epoch {membership['epoch']}, "
                  f"beat {membership['beat']}, "
                  f"{len(membership['alive'])}/{membership['size']} "
                  f"alive in view; gossip {gossip['sent']} sent / "
                  f"{gossip['merged']} merged / "
                  f"{gossip['failures']} failure(s)")
        warm = metrics.get("warm")
        if warm is not None and (warm["pushed"] or warm["seeded"]):
            print(f"  warm: {warm['pushed']} pushed, "
                  f"{warm['seeded']} seeded, "
                  f"{warm['push_failures']} failure(s)")
        if metrics["faults"]["active"]:
            print(f"  faults: plan active, "
                  f"{metrics['faults']['fired']} rule(s) fired")
    router = status["router"]
    print(f"router: {router['routed_jobs']} routed, "
          f"{router['misrouted_jobs']} misrouted, "
          f"{router['failovers']} failover(s), "
          f"{router['rerouted_jobs']} re-routed, "
          f"{router.get('probes', 0)} probe(s), "
          f"{router.get('readmissions', 0)} re-admission(s)")
    return 1 if impaired else 0


def cmd_cache(args: argparse.Namespace) -> int:
    cache = default_engine().cache
    if args.action == "show":
        stats = cache.stats()
        if stats["directory"] is None:
            print(f"persistent cache: disabled (set ${CACHE_DIR_ENV} or pass "
                  "--cache-dir to enable)")
        else:
            print(f"persistent cache: {stats['directory']}")
            print(f"  entries: {stats['disk_entries']}")
        print(f"in-process entries: {stats['memory_entries']}")
        return 0
    # clear
    removed = cache.clear(disk=True)
    where = cache.directory or "memory-only cache"
    print(f"cleared {removed} persisted result(s) from {where}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Perais & Seznec, HPCA 2014 "
                    "(VTAGE + FPC value prediction).",
    )
    parser.add_argument(
        "-j", "--jobs", type=int, default=None, metavar="N",
        help="worker processes for simulation batches "
             f"(default: ${JOBS_ENV} or 1; results are bit-identical "
             "regardless of parallelism)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist simulation results under DIR and reuse them on "
             f"later runs (default: ${CACHE_DIR_ENV} or memory-only)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="simulate one workload")
    run_p.add_argument("workload", type=_workload_name, metavar="WORKLOAD",
                       help="a Table 3 benchmark (see 'repro list') or a "
                            "scenario-c<chase>-e<entropy>-l<locality> name")
    run_p.add_argument("--predictor", default="vtage-2dstride",
                       choices=PREDICTOR_NAMES)
    run_p.add_argument("--recovery", default="squash",
                       choices=("squash", "reissue"))
    run_p.add_argument("--no-fpc", action="store_true",
                       help="use plain 3-bit confidence counters")
    run_p.add_argument("--uops", type=int, default=DEFAULT_MEASURE)
    run_p.add_argument("--warmup", type=int, default=DEFAULT_WARMUP)
    run_p.add_argument("--profile", action="store_true",
                       help="print per-phase wall-clock timings (trace "
                            "build / columnize / precompute / simulate / "
                            "kernel-c or kernel-python / cache IO) and "
                            "the active kernel after the run")
    run_p.set_defaults(fn=cmd_run)

    table_p = sub.add_parser("table", help="render a paper table")
    table_p.add_argument("which", choices=sorted(_TABLES))
    table_p.set_defaults(fn=cmd_table)

    figure_p = sub.add_parser("figure", help="reproduce a paper figure")
    figure_p.add_argument("which", choices=sorted(_FIGURES))
    figure_p.add_argument("--workloads", default=None,
                          help="comma-separated subset (default: all 19)")
    figure_p.add_argument("--uops", type=int, default=DEFAULT_MEASURE)
    figure_p.add_argument("--warmup", type=int, default=DEFAULT_WARMUP)
    figure_p.set_defaults(fn=cmd_figure)

    campaign_p = sub.add_parser(
        "campaign",
        help="run, resume or inspect declarative sweep campaigns",
        description="Execute whole sweeps (figure grids, the full "
                    "reproduction, scenario explorations) as declarative "
                    "campaigns with an on-disk journal: every completed "
                    "simulation is checkpointed, and a killed run resumes "
                    "bit-identically from where it stopped.",
    )
    campaign_sub = campaign_p.add_subparsers(dest="action", required=True)

    def _campaign_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("name", choices=sorted(CAMPAIGNS),
                       help="registered campaign")
        p.add_argument("--workloads", default=None,
                       help="comma-separated workload subset (catalog or "
                            "scenario-c*-e*-l* names; default: the "
                            "campaign's own grid)")
        p.add_argument("--uops", type=int, default=None,
                       help="measured µops per job (default: the "
                            "campaign's own slice)")
        p.add_argument("--warmup", type=int, default=None,
                       help="warm-up µops per job (default: the "
                            "campaign's own slice)")
        p.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                       help="journal completed jobs under DIR/<name>.jsonl "
                            f"(default: ${CHECKPOINT_DIR_ENV} or no journal)")
        p.add_argument("--chunk", type=int, default=None, metavar="N",
                       help="jobs per checkpointed batch (default: 1 "
                            "serial, 4x workers with a pool)")
        p.add_argument("--force", action="store_true",
                       help="rotate aside a journal that belongs to a "
                            "different job set and start over")
        p.add_argument("--render", action="store_true",
                       help="print the campaign's figure/table after the run")
        p.add_argument("--backend", default="local", choices=BACKENDS,
                       help="where job batches execute: in this process "
                            "('local'), on a running `repro serve` "
                            "daemon ('service'), or across `repro "
                            "cluster serve` shards ('cluster')")
        p.add_argument("--socket", default=None, metavar="PATH",
                       help="service socket for --backend service "
                            f"(default: ${SOCKET_ENV} or "
                            "./repro-service.sock)")
        p.add_argument("--shards", default=None, metavar="ADDR,ADDR",
                       help="comma-separated shard addresses for "
                            "--backend cluster "
                            f"(default: ${SHARDS_ENV})")
        p.add_argument("--token", default=None,
                       help="shared-secret auth token for TCP daemons "
                            f"(default: ${TOKEN_ENV})")
        p.add_argument("--profile", action="store_true",
                       help="print per-phase wall-clock timings (trace "
                            "build / columnize / precompute / simulate / "
                            "kernel-c or kernel-python / cache IO) and "
                            "the active kernel after the campaign; "
                            "phases record in this process only, so "
                            "profile serial local runs for the full "
                            "picture")

    campaign_run_p = campaign_sub.add_parser(
        "run", help="execute a campaign (resumes automatically if a "
                    "journal exists)")
    _campaign_common(campaign_run_p)
    campaign_run_p.set_defaults(fn=cmd_campaign)

    campaign_resume_p = campaign_sub.add_parser(
        "resume", help="like run, but requires an existing journal")
    _campaign_common(campaign_resume_p)
    campaign_resume_p.set_defaults(fn=cmd_campaign)

    campaign_status_p = campaign_sub.add_parser(
        "status", help="show journal completion for one or all campaigns")
    campaign_status_p.add_argument("name", nargs="?", default=None,
                                   help="campaign name (default: every "
                                        "journal in the checkpoint dir)")
    campaign_status_p.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help=f"journal directory (default: ${CHECKPOINT_DIR_ENV})")
    campaign_status_p.set_defaults(fn=cmd_campaign)

    campaign_list_p = campaign_sub.add_parser(
        "list", help="list registered campaigns")
    campaign_list_p.set_defaults(fn=cmd_campaign)

    def _socket_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument("--socket", default=None, metavar="PATH",
                       help="Unix socket of the service "
                            f"(default: ${SOCKET_ENV} or "
                            "./repro-service.sock)")

    serve_p = sub.add_parser(
        "serve",
        help="run the persistent simulation service daemon",
        description="Start a long-lived daemon that owns the result cache "
                    "and an optional completion journal, and serves "
                    "simulation jobs to any number of concurrent clients "
                    "over a Unix socket.  Jobs are deduplicated across "
                    "clients and run on a persistent -j/--jobs worker "
                    "pool; a worker killed mid-job is replaced and its "
                    "job requeued, and with --journal a restarted daemon "
                    "replays every completed job into its cache.",
    )
    _socket_arg(serve_p)
    serve_p.add_argument("--journal", default=None, metavar="PATH",
                         help="append every completed job to this JSONL "
                              "journal and replay it on restart")
    serve_p.add_argument("--queue-bound", type=int, default=None, metavar="N",
                         help="admission control: reject submits once N "
                              "jobs are outstanding, with an explicit "
                              "'overloaded' response clients retry after "
                              f"backoff (default: ${QUEUE_BOUND_ENV} or "
                              "unbounded)")
    serve_p.add_argument("--job-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="kill a worker that holds one job longer "
                              "than this and requeue the job (default: "
                              f"${JOB_TIMEOUT_ENV} or no timeout)")
    serve_p.add_argument("--chaos", action="store_true",
                         help="serve the 'chaos' introspection op and "
                              f"export the ${FAULTS_ENV} fault plan to "
                              "spawned workers (fault-matrix testing)")
    serve_p.set_defaults(fn=cmd_serve)

    cluster_p = sub.add_parser(
        "cluster",
        help="serve, inspect or drive a sharded TCP cluster",
        description="Scale the service across processes and machines: "
                    "each `cluster serve` runs one ordinary daemon on a "
                    "TCP port (a shard), and clients route every job to "
                    "its shard by consistent-hashing the job's content "
                    "key — so coalescing and cache sharing work "
                    "cluster-wide with no inter-shard coordination.  "
                    "Shards federate their caches read-through (--peer) "
                    "and share one trace store via $REPRO_TRACE_DIR.  A "
                    "shard that dies mid-batch is marked down and its "
                    "jobs re-route along the hash ring.",
    )
    cluster_sub = cluster_p.add_subparsers(dest="action", required=True)

    cluster_serve_p = cluster_sub.add_parser(
        "serve", help="run one cluster shard (a daemon on a TCP port)")
    cluster_serve_p.add_argument("--listen", required=True,
                                 metavar="HOST:PORT",
                                 help="TCP bind address; port 0 picks a "
                                      "free port (reported on the ready "
                                      "line)")
    cluster_serve_p.add_argument("--peer", action="append", default=None,
                                 metavar="ADDR",
                                 help="sibling shard to consult on cache "
                                      "misses (repeatable; host:port or "
                                      "a Unix socket path)")
    cluster_serve_p.add_argument("--token", default=None,
                                 help="require this shared-secret token "
                                      "on every request (default: "
                                      f"${TOKEN_ENV} or no auth)")
    cluster_serve_p.add_argument("--journal", default=None, metavar="PATH",
                                 help="append every completed job to this "
                                      "JSONL journal and replay it on "
                                      "restart")
    cluster_serve_p.add_argument("--queue-bound", type=int, default=None,
                                 metavar="N",
                                 help="admission control: reject submits "
                                      "once N jobs are outstanding "
                                      f"(default: ${QUEUE_BOUND_ENV} or "
                                      "unbounded)")
    cluster_serve_p.add_argument("--job-timeout", type=float, default=None,
                                 metavar="SECONDS",
                                 help="kill a worker holding one job "
                                      "longer than this and requeue it "
                                      f"(default: ${JOB_TIMEOUT_ENV} or "
                                      "no timeout)")
    cluster_serve_p.add_argument("--chaos", action="store_true",
                                 help="serve the 'chaos' op and export "
                                      f"the ${FAULTS_ENV} plan to workers")
    cluster_serve_p.add_argument("--journal-dir", default=None,
                                 metavar="DIR",
                                 help="shared cluster journal directory: "
                                      "this shard journals to "
                                      "DIR/<address>.journal and replays "
                                      "dead members' journals on failover "
                                      f"(default: ${JOURNAL_DIR_ENV})")
    cluster_serve_p.add_argument("--heartbeat-interval", type=float,
                                 default=None, metavar="SECONDS",
                                 help="gossip heartbeat cadence; 0 "
                                      "disables proactive gossip "
                                      f"(default: ${HEARTBEAT_ENV} or "
                                      f"{DEFAULT_HEARTBEAT:g})")
    cluster_serve_p.add_argument("--warm-push-budget", type=int,
                                 default=None, metavar="BYTES",
                                 help="bytes of completed results pushed "
                                      "to ring successors per cycle; 0 "
                                      "disables warming (default: "
                                      f"${WARM_PUSH_BUDGET_ENV} or "
                                      f"{DEFAULT_WARM_PUSH_BUDGET})")
    cluster_serve_p.set_defaults(fn=cmd_cluster)

    cluster_soak_p = cluster_sub.add_parser(
        "soak",
        help="run the self-healing soak: shard fleet + seeded chaos",
        description="Spawn a fleet of shard subprocesses sharing one "
                    "journal directory, drive them with concurrent "
                    "router clients, and kill/stall/revive shards on a "
                    "seeded schedule.  Exits 0 only if no batch was "
                    "lost and every result matched a serial in-process "
                    "oracle bit for bit.  Prints a JSON report.")
    cluster_soak_p.add_argument("--shards", type=int, default=3,
                                help="shard subprocesses to spawn")
    cluster_soak_p.add_argument("--clients", type=int, default=8,
                                help="concurrent client threads")
    cluster_soak_p.add_argument("--batches", type=int, default=6,
                                help="batches per client")
    cluster_soak_p.add_argument("--duration", type=float, default=120.0,
                                metavar="SECONDS",
                                help="hard deadline on the whole run")
    cluster_soak_p.add_argument("--seed", type=int, default=1337,
                                help="chaos schedule seed")
    cluster_soak_p.add_argument("--heartbeat-interval", type=float,
                                default=0.25, metavar="SECONDS",
                                help="gossip cadence handed to the fleet")
    cluster_soak_p.add_argument("--journal-dir", default=None,
                                metavar="DIR",
                                help="shared journal directory (default: "
                                     "a temporary directory)")
    cluster_soak_p.add_argument("--quiet", action="store_true",
                                help="suppress progress lines (the JSON "
                                     "report still prints)")
    cluster_soak_p.set_defaults(fn=cmd_cluster)

    def _cluster_client_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--shards", default=None, metavar="ADDR,ADDR",
                       help="comma-separated shard addresses "
                            f"(default: ${SHARDS_ENV})")
        p.add_argument("--token", default=None,
                       help="shared-secret auth token "
                            f"(default: ${TOKEN_ENV})")

    cluster_status_p = cluster_sub.add_parser(
        "status", help="aggregate every shard's metrics into one view")
    _cluster_client_args(cluster_status_p)
    cluster_status_p.set_defaults(fn=cmd_cluster)

    cluster_run_p = cluster_sub.add_parser(
        "run", help="run a predictors x workloads grid across the shards")
    _cluster_client_args(cluster_run_p)
    cluster_run_p.add_argument("--workloads", required=True,
                               help="comma-separated workloads (catalog "
                                    "or scenario-c*-e*-l* names)")
    cluster_run_p.add_argument("--predictors", default="vtage-2dstride",
                               help="comma-separated predictor "
                                    "configurations (see 'repro list')")
    cluster_run_p.add_argument("--recovery", default="squash",
                               choices=("squash", "reissue"))
    cluster_run_p.add_argument("--no-fpc", action="store_true",
                               help="use plain 3-bit confidence counters")
    cluster_run_p.add_argument("--uops", type=int, default=DEFAULT_MEASURE)
    cluster_run_p.add_argument("--warmup", type=int, default=DEFAULT_WARMUP)
    cluster_run_p.set_defaults(fn=cmd_cluster)

    submit_p = sub.add_parser(
        "submit",
        help="submit a job grid to a running service",
        description="Build a predictors x workloads job grid and submit "
                    "it to a `repro serve` daemon.  By default the "
                    "command waits and prints one summary line per "
                    "result; with --no-wait it prints a ticket to poll "
                    "via `repro results`.",
    )
    submit_p.add_argument("--workloads", required=True,
                          help="comma-separated workloads (catalog or "
                               "scenario-c*-e*-l* names)")
    submit_p.add_argument("--predictors", default="vtage-2dstride",
                          help="comma-separated predictor configurations "
                               "(see 'repro list')")
    submit_p.add_argument("--recovery", default="squash",
                          choices=("squash", "reissue"))
    submit_p.add_argument("--no-fpc", action="store_true",
                          help="use plain 3-bit confidence counters")
    submit_p.add_argument("--uops", type=int, default=DEFAULT_MEASURE)
    submit_p.add_argument("--warmup", type=int, default=DEFAULT_WARMUP)
    submit_p.add_argument("--no-wait", action="store_true",
                          help="return a ticket immediately instead of "
                               "waiting for results")
    _socket_arg(submit_p)
    submit_p.set_defaults(fn=cmd_submit)

    status_p = sub.add_parser(
        "status",
        help="show a running service's workers, queue and cache",
    )
    _socket_arg(status_p)
    status_p.set_defaults(fn=cmd_service_status)

    health_p = sub.add_parser(
        "health",
        help="probe a running service's health (exit 0/1/2)",
        description="One-shot health probe for monitoring: exit 0 when "
                    "the daemon is healthy, 1 when it is serving but "
                    "degraded (journal/cache/shm failures absorbed), 2 "
                    "when it is unreachable or has no live workers.  "
                    "Prints worker aliveness, queue depth against the "
                    "admission bound, and the degraded-mode counters.",
    )
    _socket_arg(health_p)
    health_p.add_argument("--timeout", type=float, default=5.0,
                          metavar="SECONDS",
                          help="probe deadline (default: 5s)")
    health_p.set_defaults(fn=cmd_health)

    chaos_p = sub.add_parser(
        "chaos",
        help="validate fault-injection plans or inspect a chaos daemon",
        description="Work with the deterministic fault-injection plane "
                    f"(${FAULTS_ENV}).  A plan is a seeded list of "
                    "site:action[:arg]@trigger rules; triggers are "
                    "counter-based (hit numbers, every=N, first=N, p=F), "
                    "so the same plan injects at the same points on "
                    "every run.  See DESIGN.md, 'Fault model & "
                    "degradation ladder'.",
    )
    chaos_sub = chaos_p.add_subparsers(dest="action", required=True)

    chaos_check_p = chaos_sub.add_parser(
        "check", help="parse and describe a fault spec (or @plan.json)")
    chaos_check_p.add_argument("spec",
                               help="fault spec, e.g. "
                                    "'worker.execute:crash@2;"
                                    "journal.write:torn@every=3' or "
                                    "@plan.json")
    chaos_check_p.add_argument("--seed", type=int, default=None,
                               help="plan seed for p= triggers "
                                    "(default: $REPRO_FAULTS_SEED or 0)")
    chaos_check_p.set_defaults(fn=cmd_chaos)

    chaos_show_p = chaos_sub.add_parser(
        "show", help="show the live plan of a `repro serve --chaos` daemon")
    _socket_arg(chaos_show_p)
    chaos_show_p.set_defaults(fn=cmd_chaos)

    results_p = sub.add_parser(
        "results",
        help="fetch the results of a --no-wait submission ticket",
        description="Fetch a ticket's results from a running service.  "
                    "Exits 1 (after printing progress) while jobs are "
                    "still running, 0 with one summary line per result "
                    "once the batch is complete.  Completed tickets stay "
                    "fetchable until the daemon evicts old ones.",
    )
    results_p.add_argument("ticket", type=int, help="ticket id printed by "
                           "`repro submit --no-wait`")
    _socket_arg(results_p)
    results_p.set_defaults(fn=cmd_results)

    trace_p = sub.add_parser(
        "trace",
        help="build, inspect or clear the persistent trace store",
        description="Manage the content-addressed trace store "
                    f"(--trace-dir or ${TRACE_DIR_ENV}).  Stored traces "
                    "are packed numpy columns keyed by (workload, µops, "
                    "seed) and generator version; any process pointed at "
                    "the store mmap-loads them instead of re-running the "
                    "generators, and the shared-memory trace plane fans "
                    "them out to simulation workers.",
    )
    trace_sub = trace_p.add_subparsers(dest="action", required=True)

    def _trace_dir_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument("--trace-dir", default=None, metavar="DIR",
                       help="trace store directory "
                            f"(default: ${TRACE_DIR_ENV})")

    trace_build_p = trace_sub.add_parser(
        "build", help="pre-build traces into the store")
    trace_build_p.add_argument("--workloads", required=True,
                               help="comma-separated workloads (catalog or "
                                    "scenario-c*-e*-l* names)")
    trace_build_p.add_argument("--uops", type=int, default=DEFAULT_MEASURE,
                               help="measured µops (the stored trace covers "
                                    "warmup + uops)")
    trace_build_p.add_argument("--warmup", type=int, default=DEFAULT_WARMUP)
    trace_build_p.add_argument("--seed", type=int, default=None,
                               help="build seed (default: the workload's "
                                    "catalog/scenario seed)")
    _trace_dir_arg(trace_build_p)
    trace_build_p.set_defaults(fn=cmd_trace)

    trace_ls_p = trace_sub.add_parser(
        "ls", help="list stored traces")
    trace_ls_p.add_argument("--stats", action="store_true",
                            help="append entry-count and byte totals, "
                                 "broken out by provenance")
    trace_ls_p.add_argument("--provenance", default=None,
                            choices=("generated", "ingested"),
                            help="list only this class of entries")
    _trace_dir_arg(trace_ls_p)
    trace_ls_p.set_defaults(fn=cmd_trace)

    trace_clear_p = trace_sub.add_parser(
        "clear", help="delete stored traces")
    trace_clear_p.add_argument(
        "--stats", action="store_true",
        help="report reclaimed on-disk bytes and the in-process trace "
             "LRU occupancy (packed columns + attached precompute "
             "planes) dropped alongside")
    trace_clear_p.add_argument(
        "--provenance", default=None, choices=("generated", "ingested"),
        help="clear only this class: 'generated' entries rebuild on "
             "demand, 'ingested' ones need their source log re-ingested "
             "(their registry names stop resolving)")
    _trace_dir_arg(trace_clear_p)
    trace_clear_p.set_defaults(fn=cmd_trace)

    ingest_p = sub.add_parser(
        "ingest",
        help="ingest real execution logs into the trace store",
        description="Parse execution logs ('address hex mnemonic' "
                    "commit-log lines, or the objdump-style variant), "
                    "classify each instruction into the µop vocabulary, "
                    "synthesise seeded value streams and store the packed "
                    "columns under an ingest-<slug>-<digest> workload "
                    "name.  The name is then accepted anywhere a workload "
                    "name is (repro run / submit / fuzz / campaigns) on "
                    "any process pointed at the same trace store.",
    )
    ingest_p.add_argument("files", nargs="+", metavar="LOG",
                          help="execution log file(s) to ingest")
    ingest_p.add_argument("--seed", type=int, default=None,
                          help="value-synthesis seed (part of the trace "
                               "identity; default: a fixed constant)")
    ingest_p.add_argument("--show-quarantined", type=int, default=5,
                          metavar="N",
                          help="print at most N quarantined lines per file")
    ingest_p.add_argument("--trace-dir", default=None, metavar="DIR",
                          help="trace store directory "
                               f"(default: ${TRACE_DIR_ENV})")
    ingest_p.set_defaults(fn=cmd_ingest)

    fuzz_p = sub.add_parser(
        "fuzz",
        help="differential-fuzz the three cycle-loop implementations",
        description="Sample (workload × predictor × recovery × knob) "
                    "configurations from a seed and run each through the "
                    "legacy sequential model, the vectorized Python fast "
                    "loop and the compiled kernel (REPRO_FAST_SIM / "
                    "REPRO_FAST_KERNEL forced per leg), requiring "
                    "dataclass-equal results.  Interesting corners are "
                    "registered in a JSON registry with a replayable "
                    "one-line spec; exit status 1 on any divergence.",
    )
    fuzz_p.add_argument("--budget", type=int, default=25, metavar="N",
                        help="number of sampled configurations")
    fuzz_p.add_argument("--seed", type=int, default=1, metavar="S",
                        help="sampling seed (same seed, same specs)")
    fuzz_p.add_argument("--max-uops", type=int, default=3000,
                        help="upper bound on sampled trace lengths")
    fuzz_p.add_argument("--workloads", default=None,
                        help="comma-separated workload pool (default: "
                             "catalog + random scenarios + ingested traces)")
    fuzz_p.add_argument("--predictors", default=None,
                        help="comma-separated predictor pool "
                             "(default: the full registry)")
    fuzz_p.add_argument("--corners", default=None, metavar="PATH",
                        help="corner registry JSON (default: "
                             "fuzz-corners.json next to the trace store)")
    fuzz_p.add_argument("--replay", default=None, metavar="SPEC",
                        help="re-run one emitted spec line instead of "
                             "sweeping")
    fuzz_p.add_argument("--list-corners", action="store_true",
                        help="print the registered corners and exit")
    fuzz_p.set_defaults(fn=cmd_fuzz)

    cache_p = sub.add_parser(
        "cache",
        help="inspect or clear the persistent result cache",
        description="Manage the engine's result cache.  'show' prints the "
                    "cache location and entry counts; 'clear' removes every "
                    "persisted result.",
    )
    cache_p.add_argument("action", choices=("show", "clear"))
    cache_p.set_defaults(fn=cmd_cache)

    bench_p = sub.add_parser(
        "bench",
        help="manage committed benchmark baselines",
        description="The committed BENCH_*.json reports are the "
                    "regression baseline; emitters quarantine fresh "
                    "numbers in bench_out/.  'bench promote' is the only "
                    "supported path from quarantine to committed, and it "
                    "refuses without REPRO_BENCH_PROMOTE=1 and honest "
                    "provenance (rounds, load average) in the report.")
    bench_sub = bench_p.add_subparsers(dest="action", required=True)

    bench_promote_p = bench_sub.add_parser(
        "promote",
        help="copy validated bench_out/ reports over the committed ones")
    bench_promote_p.add_argument("names", nargs="*",
                                 metavar="BENCH_name.json",
                                 help="reports to promote (default: every "
                                      "BENCH_*.json in the scratch dir)")
    bench_promote_p.add_argument("--source", default=None, metavar="DIR",
                                 help="quarantine directory to read "
                                      "(default: $REPRO_BENCH_DIR or "
                                      "bench_out/)")
    bench_promote_p.add_argument("--allow-loaded", action="store_true",
                                 help="promote even if the report was "
                                      "measured on a loaded machine")
    bench_promote_p.set_defaults(fn=cmd_bench)

    list_p = sub.add_parser("list", help="list predictors and workloads")
    list_p.set_defaults(fn=cmd_list)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    configure_default_engine(jobs=args.jobs, cache_dir=args.cache_dir)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
