"""Command-line interface.

Usage examples::

    python -m repro.cli run h264ref --predictor vtage-2dstride
    python -m repro.cli -j 4 figure 4 --uops 8000 --warmup 4000
    python -m repro.cli table 1
    python -m repro.cli cache show
    python -m repro.cli cache clear
    python -m repro.cli list

All simulations go through the experiment engine: ``--jobs/-j`` (or the
``REPRO_JOBS`` environment variable) selects how many worker processes run
the job batches, and ``REPRO_CACHE_DIR`` (or ``--cache-dir``) enables the
persistent result cache that ``cache show``/``cache clear`` manage.
Results are bit-identical whatever the parallelism or cache state.
"""

from __future__ import annotations

import argparse
import sys

from repro.engine.api import configure_default_engine, default_engine
from repro.engine.cache import CACHE_DIR_ENV
from repro.engine.executors import JOBS_ENV
from repro.experiments import figures, tables
from repro.experiments.runner import (
    DEFAULT_MEASURE,
    DEFAULT_WARMUP,
    PREDICTOR_NAMES,
    baseline_result,
    run_workload,
)
from repro.workloads.catalog import ALL_WORKLOADS, WORKLOADS

_FIGURES = {
    "1": figures.figure1,
    "3": figures.figure3,
    "4": figures.figure4,
    "5": figures.figure5,
    "6": figures.figure6,
    "7": figures.figure7,
}
_TABLES = {"1": tables.table1, "2": tables.table2, "3": tables.table3}


def _parse_workloads(raw: str | None) -> tuple[str, ...]:
    if not raw:
        return ALL_WORKLOADS
    names = tuple(name.strip() for name in raw.split(",") if name.strip())
    unknown = [n for n in names if n not in ALL_WORKLOADS]
    if unknown:
        raise SystemExit(f"unknown workloads: {', '.join(unknown)}")
    return names


def cmd_run(args: argparse.Namespace) -> int:
    result = run_workload(args.workload, args.predictor, n_uops=args.uops,
                          warmup=args.warmup, recovery=args.recovery,
                          fpc=not args.no_fpc)
    print(result.summary_line())
    if args.predictor != "none":
        base = baseline_result(args.workload, n_uops=args.uops,
                               warmup=args.warmup)
        print(f"speedup over no-VP baseline: {result.speedup_over(base):.3f}x")
    return 0


def cmd_table(args: argparse.Namespace) -> int:
    print(_TABLES[args.which]())
    return 0


def cmd_figure(args: argparse.Namespace) -> int:
    fn = _FIGURES[args.which]
    kwargs = {"workloads": _parse_workloads(args.workloads)}
    if args.which != "1":
        kwargs.update(n_uops=args.uops, warmup=args.warmup)
    else:
        kwargs.update(n_uops=args.uops)
    fig = fn(**kwargs)
    print(fig.text)
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    print("predictors:", ", ".join(PREDICTOR_NAMES))
    print()
    print("workloads (Table 3):")
    for spec in WORKLOADS:
        print(f"  {spec.name:<10} {spec.spec_name:<12} {spec.suite:<4} {spec.notes}")
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    cache = default_engine().cache
    if args.action == "show":
        stats = cache.stats()
        if stats["directory"] is None:
            print(f"persistent cache: disabled (set ${CACHE_DIR_ENV} or pass "
                  "--cache-dir to enable)")
        else:
            print(f"persistent cache: {stats['directory']}")
            print(f"  entries: {stats['disk_entries']}")
        print(f"in-process entries: {stats['memory_entries']}")
        return 0
    # clear
    removed = cache.clear(disk=True)
    where = cache.directory or "memory-only cache"
    print(f"cleared {removed} persisted result(s) from {where}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of Perais & Seznec, HPCA 2014 "
                    "(VTAGE + FPC value prediction).",
    )
    parser.add_argument(
        "-j", "--jobs", type=int, default=None, metavar="N",
        help="worker processes for simulation batches "
             f"(default: ${JOBS_ENV} or 1; results are bit-identical "
             "regardless of parallelism)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persist simulation results under DIR and reuse them on "
             f"later runs (default: ${CACHE_DIR_ENV} or memory-only)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="simulate one workload")
    run_p.add_argument("workload", choices=ALL_WORKLOADS)
    run_p.add_argument("--predictor", default="vtage-2dstride",
                       choices=PREDICTOR_NAMES)
    run_p.add_argument("--recovery", default="squash",
                       choices=("squash", "reissue"))
    run_p.add_argument("--no-fpc", action="store_true",
                       help="use plain 3-bit confidence counters")
    run_p.add_argument("--uops", type=int, default=DEFAULT_MEASURE)
    run_p.add_argument("--warmup", type=int, default=DEFAULT_WARMUP)
    run_p.set_defaults(fn=cmd_run)

    table_p = sub.add_parser("table", help="render a paper table")
    table_p.add_argument("which", choices=sorted(_TABLES))
    table_p.set_defaults(fn=cmd_table)

    figure_p = sub.add_parser("figure", help="reproduce a paper figure")
    figure_p.add_argument("which", choices=sorted(_FIGURES))
    figure_p.add_argument("--workloads", default=None,
                          help="comma-separated subset (default: all 19)")
    figure_p.add_argument("--uops", type=int, default=DEFAULT_MEASURE)
    figure_p.add_argument("--warmup", type=int, default=DEFAULT_WARMUP)
    figure_p.set_defaults(fn=cmd_figure)

    cache_p = sub.add_parser(
        "cache",
        help="inspect or clear the persistent result cache",
        description="Manage the engine's result cache.  'show' prints the "
                    "cache location and entry counts; 'clear' removes every "
                    "persisted result.",
    )
    cache_p.add_argument("action", choices=("show", "clear"))
    cache_p.set_defaults(fn=cmd_cache)

    list_p = sub.add_parser("list", help="list predictors and workloads")
    list_p.set_defaults(fn=cmd_list)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    configure_default_engine(jobs=args.jobs, cache_dir=args.cache_dir)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
