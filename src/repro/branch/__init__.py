"""Branch prediction substrate.

Table 2 of the paper specifies the front end we must reproduce: a TAGE
branch predictor (1 + 12 components, ~15 K entries, 20-cycle minimum
misprediction penalty), a 2-way 4 K-entry BTB and a 32-entry return address
stack.  VTAGE additionally consumes the global branch history and path
history that this package maintains.
"""

from repro.branch.btb import BranchTargetBuffer
from repro.branch.ras import ReturnAddressStack
from repro.branch.tage import TAGEBranchPredictor, TAGEConfig
from repro.branch.unit import BranchResult, BranchUnit

__all__ = [
    "BranchResult",
    "BranchTargetBuffer",
    "BranchUnit",
    "ReturnAddressStack",
    "TAGEBranchPredictor",
    "TAGEConfig",
]
