"""Return Address Stack: 32 entries (Table 2).

A circular stack: deep recursion silently wraps around and corrupts older
entries, producing the realistic occasional return misprediction.
"""

from __future__ import annotations


class ReturnAddressStack:
    def __init__(self, entries: int = 32):
        if entries <= 0:
            raise ValueError("RAS needs at least one entry")
        self.entries = entries
        self._stack = [0] * entries
        self._top = 0  # index of the next free slot
        self._depth = 0  # logical depth, may exceed `entries`

    def push(self, return_address: int) -> None:
        self._stack[self._top % self.entries] = return_address
        self._top += 1
        self._depth += 1

    def pop(self) -> int | None:
        """Pop the predicted return address; None when logically empty."""
        if self._depth == 0:
            return None
        self._top -= 1
        self._depth -= 1
        return self._stack[self._top % self.entries]

    @property
    def depth(self) -> int:
        return self._depth
