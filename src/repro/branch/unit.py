"""Front-end branch unit: TAGE + BTB + RAS + history management.

The unit owns the :class:`~repro.predictors.base.PredictionContext` shared
with the value predictor, since VTAGE is indexed with the same global branch
and path history the branch predictor maintains (Section 6).

Being trace-driven, the simulator resolves each control µop immediately: the
unit predicts, compares against the actual outcome from the trace, trains,
and reports whether the front end would have been redirected.  Wrong-path
fetch is not simulated (standard trace-driven limitation, see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.branch.btb import BranchTargetBuffer
from repro.branch.ras import ReturnAddressStack
from repro.branch.tage import TAGEBranchPredictor, TAGEConfig
from repro.isa.uop import MicroOp, OpClass
from repro.predictors.base import PredictionContext


@dataclass(slots=True)
class BranchResult:
    """Outcome of processing one control µop.

    Attributes:
        direction_mispredict: TAGE predicted the wrong direction (full
            branch misprediction penalty, resolved at execute).
        target_mispredict: direction fine but the target was unavailable or
            wrong (BTB/RAS miss).  Resolved early (decode) for direct
            branches; modelled with a shorter redirect penalty.
    """

    direction_mispredict: bool = False
    target_mispredict: bool = False

    @property
    def any_redirect(self) -> bool:
        return self.direction_mispredict or self.target_mispredict


#: Shared no-redirect outcome.  The overwhelmingly common case — treat
#: returned :class:`BranchResult` instances as read-only.
_WELL_PREDICTED = BranchResult()

_BRANCH_INT = int(OpClass.BRANCH)
_JUMP_INT = int(OpClass.JUMP)
_CALL_INT = int(OpClass.CALL)
_RET_INT = int(OpClass.RET)


class BranchUnit:
    """Predict/train all control µops and maintain the shared history."""

    def __init__(self, tage_config: TAGEConfig | None = None):
        self.tage = TAGEBranchPredictor(tage_config)
        self.btb = BranchTargetBuffer()
        self.ras = ReturnAddressStack()
        self.context = PredictionContext()
        self.cond_branches = 0
        self.direction_mispredicts = 0
        self.target_mispredicts = 0

    def process(self, uop: MicroOp) -> BranchResult:
        """Predict, train and record history for one control µop.

        Returns a read-only :class:`BranchResult`; the common
        well-predicted outcome is a shared instance.
        """
        return self.process_scalar(
            int(uop.op_class), uop.pc, uop.taken, uop.target
        )

    def process_scalar(self, op: int, pc: int, taken: bool,
                       target: int) -> BranchResult:
        """:meth:`process` over bare column scalars.

        The scheduler's hot loop already holds the op class, PC, direction
        and target as columnar ints (:class:`~repro.isa.trace.TraceColumns`),
        so this path skips the µop object entirely — which also lets
        store-loaded / shared-memory-attached traces simulate without ever
        materialising :class:`MicroOp` instances.  Same logic, same
        training, same results as :meth:`process`.
        """
        if op == _BRANCH_INT:
            self.cond_branches += 1
            tage = self.tage
            predicted, payload = tage.predict(pc, self.context)
            if predicted != taken:
                result = BranchResult(direction_mispredict=True)
                self.direction_mispredicts += 1
            elif taken and self._check_target(pc, target):
                result = BranchResult(target_mispredict=True)
                self.target_mispredicts += 1
            else:
                result = _WELL_PREDICTED
            tage.update(pc, taken, predicted, payload)
            # Speculative history equals actual history on the correct path
            # (mispredicted branches repair it before younger correct-path
            # µops refetch), so pushing the actual outcome is faithful.
            self.context.push_branch(taken, pc)
            return result
        if op == _JUMP_INT:
            if self._check_target(pc, target):
                self.target_mispredicts += 1
                return BranchResult(target_mispredict=True)
            return _WELL_PREDICTED
        if op == _CALL_INT:
            missed = self._check_target(pc, target)
            self.ras.push(pc + 4)
            if missed:
                self.target_mispredicts += 1
                return BranchResult(target_mispredict=True)
            return _WELL_PREDICTED
        if op == _RET_INT:
            predicted_target = self.ras.pop()
            if predicted_target != target:
                self.direction_mispredicts += 1
                # Full penalty: resolved late.
                return BranchResult(direction_mispredict=True)
            return _WELL_PREDICTED
        return _WELL_PREDICTED

    def _check_target(self, pc: int, target: int) -> bool:
        """BTB check for a taken control µop; installs on miss."""
        cached = self.btb.lookup(pc)
        if cached == target:
            return False
        self.btb.install(pc, target)
        return True
