"""Front-end branch unit: TAGE + BTB + RAS + history management.

The unit owns the :class:`~repro.predictors.base.PredictionContext` shared
with the value predictor, since VTAGE is indexed with the same global branch
and path history the branch predictor maintains (Section 6).

Being trace-driven, the simulator resolves each control µop immediately: the
unit predicts, compares against the actual outcome from the trace, trains,
and reports whether the front end would have been redirected.  Wrong-path
fetch is not simulated (standard trace-driven limitation, see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.branch.btb import BranchTargetBuffer
from repro.branch.ras import ReturnAddressStack
from repro.branch.tage import TAGEBranchPredictor, TAGEConfig
from repro.isa.uop import MicroOp, OpClass
from repro.predictors.base import PredictionContext


@dataclass(slots=True)
class BranchResult:
    """Outcome of processing one control µop.

    Attributes:
        direction_mispredict: TAGE predicted the wrong direction (full
            branch misprediction penalty, resolved at execute).
        target_mispredict: direction fine but the target was unavailable or
            wrong (BTB/RAS miss).  Resolved early (decode) for direct
            branches; modelled with a shorter redirect penalty.
    """

    direction_mispredict: bool = False
    target_mispredict: bool = False

    @property
    def any_redirect(self) -> bool:
        return self.direction_mispredict or self.target_mispredict


class BranchUnit:
    """Predict/train all control µops and maintain the shared history."""

    def __init__(self, tage_config: TAGEConfig | None = None):
        self.tage = TAGEBranchPredictor(tage_config)
        self.btb = BranchTargetBuffer()
        self.ras = ReturnAddressStack()
        self.context = PredictionContext()
        self.cond_branches = 0
        self.direction_mispredicts = 0
        self.target_mispredicts = 0

    def process(self, uop: MicroOp) -> BranchResult:
        """Predict, train and record history for one control µop."""
        result = BranchResult()
        op = uop.op_class
        if op is OpClass.BRANCH:
            self.cond_branches += 1
            predicted, payload = self.tage.predict(uop.pc, self.context)
            if predicted != uop.taken:
                result.direction_mispredict = True
                self.direction_mispredicts += 1
            elif uop.taken:
                result.target_mispredict = self._check_target(uop)
            self.tage.update(uop.pc, uop.taken, predicted, payload)
            # Speculative history equals actual history on the correct path
            # (mispredicted branches repair it before younger correct-path
            # µops refetch), so pushing the actual outcome is faithful.
            self.context.push_branch(uop.taken, uop.pc)
        elif op is OpClass.JUMP:
            result.target_mispredict = self._check_target(uop)
        elif op is OpClass.CALL:
            result.target_mispredict = self._check_target(uop)
            self.ras.push(uop.pc + 4)
        elif op is OpClass.RET:
            predicted_target = self.ras.pop()
            if predicted_target != uop.target:
                result.direction_mispredict = True  # full penalty: resolved late
                self.direction_mispredicts += 1
        if result.target_mispredict:
            self.target_mispredicts += 1
        return result

    def _check_target(self, uop: MicroOp) -> bool:
        """BTB check for a taken control µop; installs on miss."""
        cached = self.btb.lookup(uop.pc)
        if cached == uop.target:
            return False
        self.btb.install(uop.pc, uop.target)
        return True
