"""TAGE conditional branch predictor (Seznec & Michaud [21]).

The simulated core uses "TAGE 1+12 components, 15K-entry total, 20 cycles
min. mis. penalty" (Table 2).  This is a faithful functional TAGE:

* a bimodal base predictor (2-bit counters);
* 12 partially-tagged components indexed with geometrically increasing
  global history lengths hashed with the PC and path history;
* provider/alternate prediction selection with the ``use_alt_on_na``
  heuristic for newly allocated entries;
* usefulness counters with periodic aging, and randomized single-entry
  allocation on mispredictions.

The same :class:`~repro.predictors.base.PredictionContext` feeds both TAGE
and VTAGE, mirroring the paper's observation that VTAGE reuses "context
that is usually already available in the processor — thanks to the branch
predictor".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.predictors.base import PredictionContext
from repro.util.bits import MASK64, fold_value
from repro.util.hashing import (
    _KEY_CACHE,
    _MIX1,
    _MIX2,
    TAG_KEY_MULT,
    scrambled_key,
    table_index,
    tag_hash,
)
from repro.util.history import compressed_bits
from repro.util.lfsr import GaloisLFSR

#: Per-component position-memo bound; cleared wholesale when exceeded.
_MEMO_LIMIT = 1 << 15


def geometric_history_lengths(minimum: int, maximum: int, count: int) -> tuple[int, ...]:
    """The geometric series of history lengths used by TAGE components."""
    if count <= 1:
        return (minimum,)
    ratio = (maximum / minimum) ** (1.0 / (count - 1))
    lengths = []
    for i in range(count):
        length = int(round(minimum * ratio**i))
        if lengths and length <= lengths[-1]:
            length = lengths[-1] + 1
        lengths.append(length)
    return tuple(lengths)


@dataclass(slots=True)
class TAGEConfig:
    """Structural parameters for :class:`TAGEBranchPredictor`."""

    bimodal_entries: int = 4096
    tagged_entries: int = 1024
    n_components: int = 12
    min_history: int = 4
    max_history: int = 256
    tag_bits: int = 11
    counter_bits: int = 3
    useful_bits: int = 2
    u_reset_period: int = 1 << 18
    history_lengths: tuple[int, ...] = field(default=())

    def __post_init__(self):
        if not self.history_lengths:
            self.history_lengths = geometric_history_lengths(
                self.min_history, self.max_history, self.n_components
            )

    def total_entries(self) -> int:
        return self.bimodal_entries + self.n_components * self.tagged_entries


class _TageComponent:
    __slots__ = (
        "history_length",
        "index_bits",
        "index_mask",
        "tag_bits",
        "tag_mask",
        "tags",
        "ctr",
        "useful",
        "memo",
    )

    def __init__(self, entries: int, tag_bits: int, history_length: int):
        self.history_length = history_length
        self.index_bits = entries.bit_length() - 1
        self.index_mask = entries - 1
        self.tag_bits = tag_bits
        self.tag_mask = (1 << tag_bits) - 1
        self.tags = [-1] * entries
        self.ctr = [0] * entries  # signed -4..3; >= 0 predicts taken
        self.useful = [0] * entries
        # (pc << 26 | compressed) -> (index, tag): positions are a pure
        # function of PC and compressed context, so loops that revisit the
        # same branches under recurring histories skip the scramble.
        self.memo: dict[int, tuple[int, int]] = {}

    def compress(self, ctx: PredictionContext) -> int:
        """Reference compressed-context computation (the executable spec the
        incremental registers in :mod:`repro.util.history` must match)."""
        hist = ctx.ghist & ((1 << self.history_length) - 1)
        path_bits = min(self.history_length, 16)
        path = ctx.path & ((1 << path_bits) - 1)
        return fold_value(hist, 16) ^ (path << 1) ^ (self.history_length << 17)

    def position(self, pc: int, ctx: PredictionContext) -> tuple[int, int]:
        """Reference from-scratch position; the hot path in
        :meth:`TAGEBranchPredictor.predict` inlines the same arithmetic."""
        compressed = self.compress(ctx)
        return (
            table_index(pc, self.index_bits, extra=compressed),
            tag_hash(pc, self.tag_bits, extra=compressed),
        )


class TAGEBranchPredictor:
    """Functional TAGE for conditional branch direction."""

    def __init__(self, config: TAGEConfig | None = None, lfsr: GaloisLFSR | None = None):
        self.config = config if config is not None else TAGEConfig()
        cfg = self.config
        if cfg.bimodal_entries & (cfg.bimodal_entries - 1):
            raise ValueError("bimodal entries must be a power of two")
        self._lfsr = lfsr if lfsr is not None else GaloisLFSR(width=16, seed=0x1234)
        self._bimodal = [2] * cfg.bimodal_entries  # 2-bit, init weakly taken
        self._bimodal_bits = cfg.bimodal_entries.bit_length() - 1
        self._bimodal_mask = cfg.bimodal_entries - 1
        self.components = [
            _TageComponent(cfg.tagged_entries, cfg.tag_bits, length)
            for length in cfg.history_lengths
        ]
        self._lengths = tuple(cfg.history_lengths)
        # Shift placing the PC above the compressed-context field in the
        # per-component memo keys (collision-free for any history length).
        self._mkey_shift = compressed_bits(max(self._lengths))
        # Whole-vector position memo: every component position is a pure
        # function of (pc, low-64 ghist, low-16 path) — see the fold
        # horizon in util/history.py — so one dict hit replaces the whole
        # per-component hashing loop for recurring (pc, history) pairs.
        # Entries are mutable [positions, tags_generation, provider, alt]
        # records: provider/alternate depend only on the positions and the
        # component tag arrays, and tags mutate only on allocation, so the
        # match scan is also skipped while `_tags_gen` is unchanged.
        self._pos_memo: dict[tuple[int, int, int], list] = {}
        self._tags_gen = 0
        self._ctr_max = (1 << (cfg.counter_bits - 1)) - 1
        self._ctr_min = -(1 << (cfg.counter_bits - 1))
        self._useful_max = (1 << cfg.useful_bits) - 1
        self._use_alt_on_na = 8  # 4-bit counter, mid value
        self._u_reset_period = cfg.u_reset_period
        self._updates = 0
        # statistics
        self.lookups = 0
        self.mispredictions = 0

    # -- prediction --------------------------------------------------------

    def predict(self, pc: int, ctx: PredictionContext) -> tuple[bool, tuple]:
        """Return (direction, payload-for-update).

        Hot path: the per-component compressed contexts come from the
        context's incremental folded registers (updated O(components) per
        *branch*, not recomputed O(history) per lookup), positions are
        memoised per ``(pc, compressed)``, and misses inline the
        ``table_index``/``tag_hash`` scramble with the pre-multiplied
        context products — all bit-identical to the reference
        :meth:`_TageComponent.position` chain.
        """
        self.lookups += 1
        # Inlined scrambled_key cache probe (in-place clears keep the
        # module-level dict reference valid).
        scrambled = _KEY_CACHE.get(pc)
        if scrambled is None:
            scrambled = scrambled_key(pc)
        bim_idx = scrambled & self._bimodal_mask
        bim_pred = self._bimodal[bim_idx] >= 2
        provider = -1
        alt = -1
        tags_gen = self._tags_gen
        sig = (pc, ctx.ghist & MASK64, ctx.path & 0xFFFF)
        pos_memo = self._pos_memo
        record = pos_memo.get(sig)
        if record is None:
            folds = ctx.folds
            if folds is None:
                folds = ctx.fold_set()
            triples = folds.pairs(self._lengths, ctx.ghist, ctx.path)
            built = []
            append = built.append
            M = MASK64
            kt = -1  # lazily computed tag-side key product
            j = 0
            mbase = pc << self._mkey_shift
            for i, comp in enumerate(self.components):
                memo = comp.memo
                mkey = mbase | triples[j + 2]
                pos = memo.get(mkey)
                if pos is None:
                    x = pc ^ triples[j]
                    x ^= x >> 33
                    x = (x * _MIX1) & M
                    x ^= x >> 29
                    x = (x * _MIX2) & M
                    x ^= x >> 32
                    if kt < 0:
                        kt = (pc * TAG_KEY_MULT) & M
                    y = kt ^ triples[j + 1]
                    y ^= y >> 33
                    y = (y * _MIX1) & M
                    y ^= y >> 29
                    y = (y * _MIX2) & M
                    y ^= y >> 32
                    pos = (x & comp.index_mask, (y >> 17) & comp.tag_mask)
                    if len(memo) >= _MEMO_LIMIT:
                        memo.clear()
                    memo[mkey] = pos
                j += 3
                append(pos)
                if comp.tags[pos[0]] == pos[1]:
                    alt = provider
                    provider = i
            positions = tuple(built)
            if len(pos_memo) >= _MEMO_LIMIT:
                pos_memo.clear()
            pos_memo[sig] = [positions, tags_gen, provider, alt]
        elif record[1] == tags_gen:
            positions, __, provider, alt = record
        else:
            positions = record[0]
            i = 0
            for comp in self.components:
                pos = positions[i]
                if comp.tags[pos[0]] == pos[1]:
                    alt = provider
                    provider = i
                i += 1
            record[1] = tags_gen
            record[2] = provider
            record[3] = alt
        if provider < 0:
            return bim_pred, (bim_idx, provider, alt, positions, bim_pred, False)
        comp = self.components[provider]
        idx, _ = positions[provider]
        provider_pred = comp.ctr[idx] >= 0
        if alt >= 0:
            alt_idx, _ = positions[alt]
            alt_pred = self.components[alt].ctr[alt_idx] >= 0
        else:
            alt_pred = bim_pred
        # Newly allocated entries (weak counter, u == 0) may be overridden
        # by the alternate prediction when use_alt_on_na is high.
        newly_allocated = comp.useful[idx] == 0 and comp.ctr[idx] in (-1, 0)
        use_alt = newly_allocated and self._use_alt_on_na >= 8
        direction = alt_pred if use_alt else provider_pred
        payload = (bim_idx, provider, alt, positions, alt_pred, use_alt)
        return direction, payload

    # -- update ------------------------------------------------------------

    def update(self, pc: int, taken: bool, predicted: bool, payload: tuple) -> None:
        bim_idx, provider, alt, positions, alt_pred, used_alt = payload
        self._updates += 1
        if predicted != taken:
            self.mispredictions += 1
        if provider >= 0:
            comp = self.components[provider]
            ctr = comp.ctr
            useful = comp.useful
            idx = positions[provider][0]
            c = ctr[idx]
            provider_pred = c >= 0
            # use_alt_on_na bookkeeping on newly-allocated entries.
            if useful[idx] == 0 and (c == 0 or c == -1):
                if provider_pred != alt_pred:
                    self._nudge_use_alt(alt_pred == taken)
            # usefulness: provider correct where the alternate was wrong.
            if provider_pred != alt_pred:
                u = useful[idx]
                if provider_pred == taken:
                    if u < self._useful_max:
                        useful[idx] = u + 1
                elif u > 0:
                    useful[idx] = u - 1
            c = c + 1 if taken else c - 1
            if c > self._ctr_max:
                c = self._ctr_max
            elif c < self._ctr_min:
                c = self._ctr_min
            ctr[idx] = c
            # Also train the alternate/bimodal for weak new entries.
            if useful[idx] == 0:
                self._train_alt(bim_idx, alt, positions, taken)
        else:
            self._train_bimodal(bim_idx, taken)
        # Allocate on misprediction if a longer history component exists.
        if predicted != taken and provider < len(self.components) - 1:
            self._allocate(provider, positions, taken)
        if self._updates % self._u_reset_period == 0:
            self._age_useful()

    # -- internals -----------------------------------------------------------

    def _train_alt(self, bim_idx: int, alt: int, positions, taken: bool) -> None:
        if alt >= 0:
            comp = self.components[alt]
            idx, _ = positions[alt]
            comp.ctr[idx] = self._saturate(comp.ctr[idx] + (1 if taken else -1))
        else:
            self._train_bimodal(bim_idx, taken)

    def _train_bimodal(self, idx: int, taken: bool) -> None:
        value = self._bimodal[idx] + (1 if taken else -1)
        self._bimodal[idx] = min(3, max(0, value))

    def _saturate(self, value: int) -> int:
        return min(self._ctr_max, max(self._ctr_min, value))

    def _nudge_use_alt(self, alt_was_right: bool) -> None:
        if alt_was_right:
            self._use_alt_on_na = min(15, self._use_alt_on_na + 1)
        else:
            self._use_alt_on_na = max(0, self._use_alt_on_na - 1)

    def _allocate(self, provider: int, positions, taken: bool) -> None:
        candidates = []
        for i in range(provider + 1, len(self.components)):
            idx, _ = positions[i]
            if self.components[i].useful[idx] == 0:
                candidates.append(i)
        if not candidates:
            for i in range(provider + 1, len(self.components)):
                idx, _ = positions[i]
                if self.components[i].useful[idx] > 0:
                    self.components[i].useful[idx] -= 1
            return
        # Prefer shorter histories (2:1), as in the original TAGE.
        pick = candidates[0]
        if len(candidates) > 1 and self._lfsr.next_bits(2) == 0:
            pick = candidates[1]
        comp = self.components[pick]
        idx, tag = positions[pick]
        comp.tags[idx] = tag
        comp.ctr[idx] = 0 if taken else -1
        comp.useful[idx] = 0
        # Tag arrays changed: memoised provider/alternate scans are stale.
        self._tags_gen += 1

    def _age_useful(self) -> None:
        for comp in self.components:
            useful = comp.useful
            for i, u in enumerate(useful):
                if u:
                    useful[i] = u >> 1

    @property
    def misprediction_rate(self) -> float:
        return self.mispredictions / self.lookups if self.lookups else 0.0
