"""TAGE conditional branch predictor (Seznec & Michaud [21]).

The simulated core uses "TAGE 1+12 components, 15K-entry total, 20 cycles
min. mis. penalty" (Table 2).  This is a faithful functional TAGE:

* a bimodal base predictor (2-bit counters);
* 12 partially-tagged components indexed with geometrically increasing
  global history lengths hashed with the PC and path history;
* provider/alternate prediction selection with the ``use_alt_on_na``
  heuristic for newly allocated entries;
* usefulness counters with periodic aging, and randomized single-entry
  allocation on mispredictions.

The same :class:`~repro.predictors.base.PredictionContext` feeds both TAGE
and VTAGE, mirroring the paper's observation that VTAGE reuses "context
that is usually already available in the processor — thanks to the branch
predictor".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.predictors.base import PredictionContext
from repro.util.bits import fold_value
from repro.util.hashing import table_index, tag_hash
from repro.util.lfsr import GaloisLFSR


def geometric_history_lengths(minimum: int, maximum: int, count: int) -> tuple[int, ...]:
    """The geometric series of history lengths used by TAGE components."""
    if count <= 1:
        return (minimum,)
    ratio = (maximum / minimum) ** (1.0 / (count - 1))
    lengths = []
    for i in range(count):
        length = int(round(minimum * ratio**i))
        if lengths and length <= lengths[-1]:
            length = lengths[-1] + 1
        lengths.append(length)
    return tuple(lengths)


@dataclass(slots=True)
class TAGEConfig:
    """Structural parameters for :class:`TAGEBranchPredictor`."""

    bimodal_entries: int = 4096
    tagged_entries: int = 1024
    n_components: int = 12
    min_history: int = 4
    max_history: int = 256
    tag_bits: int = 11
    counter_bits: int = 3
    useful_bits: int = 2
    u_reset_period: int = 1 << 18
    history_lengths: tuple[int, ...] = field(default=())

    def __post_init__(self):
        if not self.history_lengths:
            self.history_lengths = geometric_history_lengths(
                self.min_history, self.max_history, self.n_components
            )

    def total_entries(self) -> int:
        return self.bimodal_entries + self.n_components * self.tagged_entries


class _TageComponent:
    __slots__ = ("history_length", "index_bits", "tag_bits", "tags", "ctr", "useful")

    def __init__(self, entries: int, tag_bits: int, history_length: int):
        self.history_length = history_length
        self.index_bits = entries.bit_length() - 1
        self.tag_bits = tag_bits
        self.tags = [-1] * entries
        self.ctr = [0] * entries  # signed -4..3; >= 0 predicts taken
        self.useful = [0] * entries

    def compress(self, ctx: PredictionContext) -> int:
        hist = ctx.ghist & ((1 << self.history_length) - 1)
        path_bits = min(self.history_length, 16)
        path = ctx.path & ((1 << path_bits) - 1)
        return fold_value(hist, 16) ^ (path << 1) ^ (self.history_length << 17)

    def position(self, pc: int, ctx: PredictionContext) -> tuple[int, int]:
        compressed = self.compress(ctx)
        return (
            table_index(pc, self.index_bits, extra=compressed),
            tag_hash(pc, self.tag_bits, extra=compressed),
        )


class TAGEBranchPredictor:
    """Functional TAGE for conditional branch direction."""

    def __init__(self, config: TAGEConfig | None = None, lfsr: GaloisLFSR | None = None):
        self.config = config if config is not None else TAGEConfig()
        cfg = self.config
        if cfg.bimodal_entries & (cfg.bimodal_entries - 1):
            raise ValueError("bimodal entries must be a power of two")
        self._lfsr = lfsr if lfsr is not None else GaloisLFSR(width=16, seed=0x1234)
        self._bimodal = [2] * cfg.bimodal_entries  # 2-bit, init weakly taken
        self._bimodal_bits = cfg.bimodal_entries.bit_length() - 1
        self.components = [
            _TageComponent(cfg.tagged_entries, cfg.tag_bits, length)
            for length in cfg.history_lengths
        ]
        self._ctr_max = (1 << (cfg.counter_bits - 1)) - 1
        self._ctr_min = -(1 << (cfg.counter_bits - 1))
        self._useful_max = (1 << cfg.useful_bits) - 1
        self._use_alt_on_na = 8  # 4-bit counter, mid value
        self._updates = 0
        # statistics
        self.lookups = 0
        self.mispredictions = 0

    # -- prediction --------------------------------------------------------

    def predict(self, pc: int, ctx: PredictionContext) -> tuple[bool, tuple]:
        """Return (direction, payload-for-update)."""
        self.lookups += 1
        bim_idx = table_index(pc, self._bimodal_bits)
        bim_pred = self._bimodal[bim_idx] >= 2
        provider = -1
        alt = -1
        positions = []
        for i, comp in enumerate(self.components):
            idx, tag = comp.position(pc, ctx)
            positions.append((idx, tag))
            if comp.tags[idx] == tag:
                alt = provider
                provider = i
        if provider < 0:
            return bim_pred, (bim_idx, provider, alt, tuple(positions), bim_pred, False)
        comp = self.components[provider]
        idx, _ = positions[provider]
        provider_pred = comp.ctr[idx] >= 0
        if alt >= 0:
            alt_idx, _ = positions[alt]
            alt_pred = self.components[alt].ctr[alt_idx] >= 0
        else:
            alt_pred = bim_pred
        # Newly allocated entries (weak counter, u == 0) may be overridden
        # by the alternate prediction when use_alt_on_na is high.
        newly_allocated = comp.useful[idx] == 0 and comp.ctr[idx] in (-1, 0)
        use_alt = newly_allocated and self._use_alt_on_na >= 8
        direction = alt_pred if use_alt else provider_pred
        payload = (bim_idx, provider, alt, tuple(positions), alt_pred, use_alt)
        return direction, payload

    # -- update ------------------------------------------------------------

    def update(self, pc: int, taken: bool, predicted: bool, payload: tuple) -> None:
        bim_idx, provider, alt, positions, alt_pred, used_alt = payload
        self._updates += 1
        if predicted != taken:
            self.mispredictions += 1
        if provider >= 0:
            comp = self.components[provider]
            idx, _ = positions[provider]
            provider_pred = comp.ctr[idx] >= 0
            # use_alt_on_na bookkeeping on newly-allocated entries.
            if comp.useful[idx] == 0 and comp.ctr[idx] in (-1, 0):
                if provider_pred != alt_pred:
                    self._nudge_use_alt(alt_pred == taken)
            # usefulness: provider correct where the alternate was wrong.
            if provider_pred != alt_pred:
                if provider_pred == taken:
                    if comp.useful[idx] < self._useful_max:
                        comp.useful[idx] += 1
                elif comp.useful[idx] > 0:
                    comp.useful[idx] -= 1
            comp.ctr[idx] = self._saturate(comp.ctr[idx] + (1 if taken else -1))
            # Also train the alternate/bimodal for weak new entries.
            if comp.useful[idx] == 0:
                self._train_alt(bim_idx, alt, positions, taken)
        else:
            self._train_bimodal(bim_idx, taken)
        # Allocate on misprediction if a longer history component exists.
        if predicted != taken and provider < len(self.components) - 1:
            self._allocate(provider, positions, taken)
        if self._updates % self.config.u_reset_period == 0:
            self._age_useful()

    # -- internals -----------------------------------------------------------

    def _train_alt(self, bim_idx: int, alt: int, positions, taken: bool) -> None:
        if alt >= 0:
            comp = self.components[alt]
            idx, _ = positions[alt]
            comp.ctr[idx] = self._saturate(comp.ctr[idx] + (1 if taken else -1))
        else:
            self._train_bimodal(bim_idx, taken)

    def _train_bimodal(self, idx: int, taken: bool) -> None:
        value = self._bimodal[idx] + (1 if taken else -1)
        self._bimodal[idx] = min(3, max(0, value))

    def _saturate(self, value: int) -> int:
        return min(self._ctr_max, max(self._ctr_min, value))

    def _nudge_use_alt(self, alt_was_right: bool) -> None:
        if alt_was_right:
            self._use_alt_on_na = min(15, self._use_alt_on_na + 1)
        else:
            self._use_alt_on_na = max(0, self._use_alt_on_na - 1)

    def _allocate(self, provider: int, positions, taken: bool) -> None:
        candidates = []
        for i in range(provider + 1, len(self.components)):
            idx, _ = positions[i]
            if self.components[i].useful[idx] == 0:
                candidates.append(i)
        if not candidates:
            for i in range(provider + 1, len(self.components)):
                idx, _ = positions[i]
                if self.components[i].useful[idx] > 0:
                    self.components[i].useful[idx] -= 1
            return
        # Prefer shorter histories (2:1), as in the original TAGE.
        pick = candidates[0]
        if len(candidates) > 1 and self._lfsr.next_bits(2) == 0:
            pick = candidates[1]
        comp = self.components[pick]
        idx, tag = positions[pick]
        comp.tags[idx] = tag
        comp.ctr[idx] = 0 if taken else -1
        comp.useful[idx] = 0

    def _age_useful(self) -> None:
        for comp in self.components:
            useful = comp.useful
            for i, u in enumerate(useful):
                if u:
                    useful[i] = u >> 1

    @property
    def misprediction_rate(self) -> float:
        return self.mispredictions / self.lookups if self.lookups else 0.0
