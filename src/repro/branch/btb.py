"""Branch Target Buffer: 2-way, 4 K entries (Table 2)."""

from __future__ import annotations

from repro.util.hashing import table_index


class BranchTargetBuffer:
    """Set-associative BTB with true-LRU replacement inside each set."""

    def __init__(self, entries: int = 4096, ways: int = 2):
        if entries % ways:
            raise ValueError("entry count must be divisible by associativity")
        sets = entries // ways
        if sets & (sets - 1):
            raise ValueError("set count must be a power of two")
        self.entries = entries
        self.ways = ways
        self.sets = sets
        self._index_bits = sets.bit_length() - 1
        # Each set is an ordered list of (pc, target); front = MRU.
        self._sets: list[list[tuple[int, int]]] = [[] for _ in range(sets)]
        self.hits = 0
        self.misses = 0

    def _set_for(self, pc: int) -> list[tuple[int, int]]:
        return self._sets[table_index(pc, self._index_bits)]

    def lookup(self, pc: int) -> int | None:
        """Return the cached target for *pc*, or None on a BTB miss."""
        ways = self._set_for(pc)
        for position, (tag, target) in enumerate(ways):
            if tag == pc:
                if position:
                    ways.insert(0, ways.pop(position))
                self.hits += 1
                return target
        self.misses += 1
        return None

    def install(self, pc: int, target: int) -> None:
        """Install or refresh the target for *pc* (LRU replacement)."""
        ways = self._set_for(pc)
        for position, (tag, _) in enumerate(ways):
            if tag == pc:
                ways.pop(position)
                break
        ways.insert(0, (pc, target))
        if len(ways) > self.ways:
            ways.pop()
