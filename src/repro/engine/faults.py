"""Deterministic fault injection: the chaos plane of the service stack.

The paper's speculation story only works because misspeculation recovery
is cheap *and exercised on every run*; the serving stack holds itself to
the same bar.  Every layer that can fail in production — worker
execution, service socket I/O, journal and cache writes, trace-store
I/O, shared-memory attach — carries an **injection site**: a named
:func:`fire` call that normally costs one ``is None`` check and, under
an active :class:`FaultPlan`, deterministically returns the fault to
inject at that hit.

Determinism is the whole design: a plan is a list of
``site:action[:arg]@trigger`` rules plus a seed, and triggers are
**counter-based** — "the 3rd journal write", "every 2nd socket send",
"each hit with probability 0.25 under seed 7" — never wall-clock or
global randomness.  The probabilistic trigger hashes
``(seed, site, hit-number)``, so the same plan against the same request
sequence fires at exactly the same points on every run; a chaos failure
in CI reproduces locally with one environment variable.

Activation:

* ``REPRO_FAULTS=<spec>`` — any process (daemon, worker, test) parses
  the spec on first :func:`fire` call.  ``REPRO_FAULTS=@plan.json``
  loads a JSON plan file instead.  An unparseable spec warns once and
  disables injection — a typo'd plan must not crash a production write
  path it was meant to test.
* :func:`install_plan` — programmatic installation (tests, the daemon's
  ``chaos`` protocol op).  With ``export_env=True`` the spec is also
  exported to ``os.environ`` so worker processes spawned *afterwards*
  inherit the plan.

Sites and their actions are listed in :data:`SITES`; ``repro chaos``
drives a plan against a live daemon and DESIGN.md ("Fault model &
degradation ladder") documents which faults must be survivable.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

#: Environment variable carrying the active fault plan spec (or
#: ``@<path>`` naming a JSON plan file).  Empty/unset means no faults.
FAULTS_ENV = "REPRO_FAULTS"

#: Environment variable with the plan seed (used by probabilistic
#: triggers); ``REPRO_FAULTS_SEED``, default 0.
FAULTS_SEED_ENV = "REPRO_FAULTS_SEED"

#: Every known injection site and the actions it honours.  ``fire`` on
#: an unknown site still works (sites are strings), but plan parsing
#: validates against this table so a typo'd site fails loudly instead of
#: silently never firing.
SITES: dict[str, tuple[str, ...]] = {
    # Worker execution (queue pool + batch pool): die, wedge, crawl, raise.
    "worker.execute": ("crash", "hang", "slow", "error"),
    # Service socket I/O: drop the response, send half of it, or stall
    # before answering (the client's read timeout is what catches this).
    "service.send": ("drop", "partial", "stall"),
    # Journal appends: a torn half-record (kill mid-write) or a failing
    # fsync (the write may or may not be durable; the daemon must degrade).
    "journal.write": ("torn", "fsync"),
    # Result-cache persistence: torn tmp-file write, disk full, plain IO
    # error.  Never allowed to affect the in-memory result.
    "cache.write": ("torn", "enospc", "error"),
    # Trace-store loads: damage the on-disk entry *before* the read so the
    # real validation/quarantine path runs against real corruption.
    "store.read": ("truncate", "garbage-meta"),
    # Trace-store persists: disk full, or a partial multi-file write.
    "store.write": ("enospc", "partial"),
    # Shared-memory plane: attach failure in the worker, materialisation
    # failure in the parent.  Both must degrade to a local rebuild.
    "shm.attach": ("fail",),
    "shm.materialize": ("fail",),
    # Cluster plane, daemon side: a federated-cache peer lookup that
    # fails outright or stalls past the peer deadline.  Either way the
    # shard must degrade to executing locally — a slow peer can never be
    # worse than no peer.
    "peer.lookup": ("fail", "stall"),
    # Cluster plane, router side: a routing decision that picks the
    # wrong shard ("misroute" — any shard can run any job, so this only
    # costs cache locality) or finds its shard dead ("drop" — the
    # router must mark it down and rebalance onto the ring's survivors).
    "cluster.route": ("misroute", "drop"),
    # Membership gossip: a heartbeat that never leaves the shard
    # ("drop") or leaves late ("delay", arg = seconds).  Gossip is an
    # eventually-consistent optimisation, so neither may affect result
    # correctness — only how fast the fleet converges.
    "gossip.heartbeat": ("drop", "delay"),
    # Failover journal replay: the peer journal is read as if its tail
    # were torn mid-record ("torn" — the reader keeps the intact prefix
    # and the missing completions simply re-simulate).
    "journal.replay": ("torn",),
}


class FaultSpecError(ValueError):
    """A fault plan spec or plan file could not be parsed."""


class InjectedFault(RuntimeError):
    """An error deliberately raised by the fault plane (non-IO sites)."""


@dataclass(frozen=True)
class FaultRule:
    """One ``site:action[:arg]@trigger`` rule of a :class:`FaultPlan`.

    The trigger is one of: explicit hit numbers (``when``, 1-based),
    ``every`` Nth hit, or per-hit probability ``prob`` (resolved
    deterministically from the plan seed and the hit counter).  A rule
    with no trigger fires on every hit.
    """

    site: str
    action: str
    arg: float | None = None
    when: tuple[int, ...] = ()
    every: int = 0
    prob: float = 0.0

    def matches(self, hit: int, seed: int) -> bool:
        """Whether this rule fires on the *hit*-th visit to its site."""
        if self.when:
            return hit in self.when
        if self.every:
            return hit % self.every == 0
        if self.prob:
            digest = hashlib.sha256(
                f"{seed}:{self.site}:{hit}".encode()).digest()
            return int.from_bytes(digest[:8], "big") < self.prob * 2**64
        return True

    def trigger_text(self) -> str:
        """The trigger part of the spec syntax (for round-trips/reports)."""
        if self.when:
            return ",".join(str(n) for n in self.when)
        if self.every:
            return f"every={self.every}"
        if self.prob:
            return f"p={self.prob:g}"
        return "always"

    def to_spec(self) -> str:
        """This rule in ``site:action[:arg]@trigger`` spec syntax."""
        head = f"{self.site}:{self.action}"
        if self.arg is not None:
            head += f":{self.arg:g}"
        trigger = self.trigger_text()
        return head if trigger == "always" else f"{head}@{trigger}"


def _parse_trigger(text: str) -> dict:
    text = text.strip()
    if not text or text == "always":
        return {}
    if text.startswith("every="):
        try:
            every = int(text[len("every="):])
        except ValueError:
            raise FaultSpecError(f"bad every= trigger: {text!r}") from None
        if every < 1:
            raise FaultSpecError(f"every= must be >= 1: {text!r}")
        return {"every": every}
    if text.startswith("p="):
        try:
            prob = float(text[len("p="):])
        except ValueError:
            raise FaultSpecError(f"bad p= trigger: {text!r}") from None
        if not 0.0 <= prob <= 1.0:
            raise FaultSpecError(f"p= must be in [0, 1]: {text!r}")
        return {"prob": prob}
    if text.startswith("first="):
        try:
            first = int(text[len("first="):])
        except ValueError:
            raise FaultSpecError(f"bad first= trigger: {text!r}") from None
        if first < 1:
            raise FaultSpecError(f"first= must be >= 1: {text!r}")
        return {"when": tuple(range(1, first + 1))}
    try:
        when = tuple(sorted(int(part) for part in text.split(",")))
    except ValueError:
        raise FaultSpecError(f"bad trigger {text!r} (expected hit numbers, "
                             "every=N, first=N or p=F)") from None
    if any(n < 1 for n in when):
        raise FaultSpecError(f"hit numbers are 1-based: {text!r}")
    return {"when": when}


def _parse_rule(text: str) -> FaultRule:
    text = text.strip()
    head, _, trigger = text.partition("@")
    parts = head.split(":")
    if len(parts) < 2 or len(parts) > 3:
        raise FaultSpecError(
            f"bad fault rule {text!r} (expected site:action[:arg][@trigger])")
    site, action = parts[0].strip(), parts[1].strip()
    arg = None
    if len(parts) == 3:
        try:
            arg = float(parts[2])
        except ValueError:
            raise FaultSpecError(f"bad numeric arg in {text!r}") from None
    if site not in SITES:
        raise FaultSpecError(
            f"unknown fault site {site!r} (known: {', '.join(sorted(SITES))})")
    if action not in SITES[site]:
        raise FaultSpecError(
            f"site {site!r} does not support action {action!r} "
            f"(supported: {', '.join(SITES[site])})")
    return FaultRule(site=site, action=action, arg=arg,
                     **_parse_trigger(trigger))


@dataclass
class FaultPlan:
    """A seeded set of fault rules plus per-site hit counters.

    ``check(site)`` increments the site's counter and returns the first
    rule that fires on this hit (or ``None``).  The counters *are* the
    schedule: no wall-clock, no global RNG, so the same plan against the
    same operation sequence injects at the same points on every run.
    """

    rules: list[FaultRule] = field(default_factory=list)
    seed: int = 0
    counts: dict[str, int] = field(default_factory=dict)
    fired: dict[str, int] = field(default_factory=dict)

    @classmethod
    def parse(cls, spec: str, seed: int | None = None) -> "FaultPlan":
        """Build a plan from a ``;``-joined rule spec or ``@<file>``.

        Raises :class:`FaultSpecError` on any syntax problem — callers
        that own a user-supplied spec (the CLI, the daemon's ``chaos``
        op) surface that as a clean error.
        """
        spec = (spec or "").strip()
        if spec.startswith("@"):
            return cls.from_file(spec[1:], seed=seed)
        rules = [_parse_rule(part) for part in spec.split(";")
                 if part.strip()]
        if not rules:
            raise FaultSpecError("fault spec contains no rules")
        return cls(rules=rules, seed=_env_seed() if seed is None else seed)

    @classmethod
    def from_file(cls, path: str | os.PathLike,
                  seed: int | None = None) -> "FaultPlan":
        """Load a JSON plan file: ``{"seed": N, "rules": [...]}``.

        Each rule object carries ``site``, ``action`` and optionally
        ``arg`` and ``trigger`` (the same trigger syntax the inline spec
        uses).  An explicit *seed* argument overrides the file's.
        """
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, ValueError) as exc:
            raise FaultSpecError(f"cannot load fault plan {path}: {exc}") \
                from None
        if not isinstance(payload, dict) or \
                not isinstance(payload.get("rules"), list):
            raise FaultSpecError(f"{path} is not a fault plan "
                                 "({'seed': N, 'rules': [...]})")
        rules = []
        for raw in payload["rules"]:
            if not isinstance(raw, dict) or "site" not in raw \
                    or "action" not in raw:
                raise FaultSpecError(f"bad rule in {path}: {raw!r}")
            text = f"{raw['site']}:{raw['action']}"
            if raw.get("arg") is not None:
                text += f":{raw['arg']}"
            if raw.get("trigger"):
                text += f"@{raw['trigger']}"
            rules.append(_parse_rule(text))
        if not rules:
            raise FaultSpecError(f"{path} contains no rules")
        if seed is None:
            seed = int(payload.get("seed", _env_seed()))
        return cls(rules=rules, seed=seed)

    def to_spec(self) -> str:
        """The plan as the inline ``;``-joined spec syntax."""
        return ";".join(rule.to_spec() for rule in self.rules)

    def check(self, site: str) -> FaultRule | None:
        """Count one hit on *site*; the rule to inject now, or ``None``."""
        hit = self.counts.get(site, 0) + 1
        self.counts[site] = hit
        for rule in self.rules:
            if rule.site == site and rule.matches(hit, self.seed):
                self.fired[site] = self.fired.get(site, 0) + 1
                return rule
        return None

    def describe(self) -> dict:
        """Plan summary for ``health``/``chaos`` responses and reports."""
        return {
            "seed": self.seed,
            "rules": [rule.to_spec() for rule in self.rules],
            "hits": dict(self.counts),
            "fired": dict(self.fired),
        }


def _env_seed() -> int:
    raw = os.environ.get(FAULTS_SEED_ENV, "").strip()
    try:
        return int(raw) if raw else 0
    except ValueError:
        return 0


# Module state: None = no plan, _UNRESOLVED = env not yet consulted.
# The fast path of fire() is one identity check against None.
_UNRESOLVED = object()
_plan: "FaultPlan | None | object" = _UNRESOLVED
_warned = False


def active_plan() -> FaultPlan | None:
    """The installed plan, resolving ``$REPRO_FAULTS`` on first use.

    A spec that fails to parse warns once on stderr and disables
    injection for the process — the production write paths under test
    must not crash because the *test harness* input was malformed.
    """
    global _plan, _warned
    if _plan is _UNRESOLVED:
        spec = os.environ.get(FAULTS_ENV, "").strip()
        if not spec:
            _plan = None
        else:
            try:
                _plan = FaultPlan.parse(spec)
            except FaultSpecError as exc:
                if not _warned:
                    print(f"repro: ignoring ${FAULTS_ENV}: {exc}",
                          file=sys.stderr)
                    _warned = True
                _plan = None
    return _plan  # type: ignore[return-value]


def install_plan(plan: "FaultPlan | str | None", *,
                 seed: int | None = None,
                 export_env: bool = False) -> FaultPlan | None:
    """Install (or, with ``None``, clear) the process-wide fault plan.

    Accepts a ready :class:`FaultPlan` or a spec string (parsed with
    :meth:`FaultPlan.parse` — raises :class:`FaultSpecError` on bad
    input).  With *export_env* the spec is mirrored into
    ``$REPRO_FAULTS`` so processes spawned after this call inherit the
    plan (each with fresh counters); clearing removes the variable.
    Returns the previously active plan.
    """
    global _plan
    previous = _plan if _plan is not _UNRESOLVED else None
    if isinstance(plan, str):
        plan = FaultPlan.parse(plan, seed=seed)
    _plan = plan
    if export_env:
        if plan is None:
            os.environ.pop(FAULTS_ENV, None)
            os.environ.pop(FAULTS_SEED_ENV, None)
        else:
            os.environ[FAULTS_ENV] = plan.to_spec()
            os.environ[FAULTS_SEED_ENV] = str(plan.seed)
    return previous  # type: ignore[return-value]


def reset() -> None:
    """Forget the installed plan and re-resolve from the environment.

    Test isolation: a test that installed a plan (or mutated
    ``$REPRO_FAULTS``) calls this so the next :func:`fire` sees a clean
    slate.
    """
    global _plan, _warned
    _plan = _UNRESOLVED
    _warned = False


def fire(site: str) -> FaultRule | None:
    """The injection hook: the fault to inject at *site* now, or ``None``.

    This is the only call production code makes; with no plan active it
    is one identity comparison.  Counters advance even for sites no rule
    names, so ``health`` can report traffic per site under a plan.
    """
    plan = _plan
    if plan is None:
        return None
    if plan is _UNRESOLVED:
        plan = active_plan()
        if plan is None:
            return None
    return plan.check(site)


# -- action helpers (shared by the injection sites) -----------------------


def io_error(rule: FaultRule, site: str) -> OSError:
    """Build the :class:`OSError` a disk-fault rule injects.

    ``enospc`` maps to ``ENOSPC`` (disk full), everything else to
    ``EIO`` — real errno values, so the production ``except OSError``
    handling under test is exactly the code that would run in anger.
    """
    code = errno.ENOSPC if rule.action == "enospc" else errno.EIO
    return OSError(code, f"injected {rule.action} fault at {site}")


def apply_worker_fault(fault: dict, *, allow_fatal: bool = True) -> None:
    """Execute a ``worker.execute`` fault directive inside a worker.

    The parent evaluates the plan (keeping the schedule deterministic in
    one place) and ships a small directive; the worker acts it out:
    ``crash`` dies like a SIGKILL (``os._exit``), ``hang`` sleeps past
    any job timeout, ``slow`` sleeps briefly then proceeds, ``error``
    raises :class:`InjectedFault`.  With ``allow_fatal=False`` (the
    batch pool, which cannot survive a dead worker) ``crash``/``hang``
    degrade to ``error``.
    """
    action = fault.get("action")
    arg = fault.get("arg")
    if action in ("crash", "hang") and not allow_fatal:
        action = "error"
    if action == "crash":
        os._exit(137)
    elif action == "hang":
        time.sleep(arg if arg else 3600.0)
    elif action == "slow":
        time.sleep(arg if arg else 0.05)
    elif action == "error":
        raise InjectedFault("injected worker fault")


def damage_store_entry(rule: FaultRule, entry: Path,
                       column_file: str, meta_file: str) -> None:
    """Apply a ``store.read`` fault by damaging the on-disk entry.

    ``truncate`` cuts the first column file in half; ``garbage-meta``
    overwrites the metadata with non-JSON bytes.  The *reader* then runs
    its ordinary validation against genuine corruption — the healing
    path under test is the real one, not a mock.
    """
    try:
        if rule.action == "truncate":
            target = entry / column_file
            size = target.stat().st_size
            with open(target, "r+b") as fh:
                fh.truncate(max(1, size // 2))
        elif rule.action == "garbage-meta":
            (entry / meta_file).write_bytes(b"\x00not json{{{")
    except OSError:
        pass
