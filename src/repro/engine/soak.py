"""Long-running cluster soak: many clients, seeded chaos, zero loss.

The acceptance harness behind ``repro cluster soak``: spawn a fleet of
real shard subprocesses sharing one ``--journal-dir``, hammer them with
N concurrent router clients, and — while they work — run a **seeded**
chaos schedule that SIGKILLs shards, stalls them (SIGSTOP/SIGCONT) and
revives the corpses on their original ports.  At the end the harness
asserts the self-healing story end to end:

* **zero lost jobs** — every batch every client submitted eventually
  completed (routers fail over, probe and re-admit on their own);
* **bit-identical results** — every result matches a serial in-process
  oracle computed up front, so failover never smuggles in a wrong or
  stale answer;
* **bounded re-simulation** — summing journal records across the shared
  journal dir counts every execution that ever happened (fsync-per-record
  survives SIGKILL), so ``records - unique_jobs`` is exactly the work
  redone because a shard died with results the fleet hadn't learned yet;
* **self-healing observed** — routers report probes and re-admissions,
  shards report gossip traffic and journal replays.

Everything is deterministic from :attr:`SoakConfig.seed` on the chaos
side; wall-clock interleaving of clients is inherently racy, which is
the point — the *invariants* must hold under any interleaving.

The default config is a smoke-sized run (seconds); CI runs it via
``repro cluster soak --duration 30``; the nightly-sized knobs are all
flags on the same verb.
"""

from __future__ import annotations

import os
import random
import re
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.engine.api import Engine
from repro.engine.cache import ResultCache
from repro.engine.checkpoint import read_journal_snapshot
from repro.engine.client import ServiceError, ServiceUnavailable
from repro.engine.cluster import ShardRouter
from repro.engine.executors import SerialExecutor
from repro.engine.job import SimJob

#: Workload pool the soak grid draws from (all catalog members, so the
#: oracle never needs trace files).
SOAK_WORKLOADS = ("gzip", "wupwise", "applu", "vpr", "art", "crafty",
                  "parser", "vortex", "bzip2", "gcc", "gamess", "mcf")

#: Predictor pool: cheap configs so one job is milliseconds, letting a
#: short soak push hundreds of batches through the fleet.
SOAK_PREDICTORS = ("none", "lvp", "2dstride", "vtage")


@dataclass
class SoakConfig:
    """One soak run's shape: fleet size, client pressure, chaos cadence."""

    #: Shard subprocesses to spawn (and keep reviving).
    shards: int = 3
    #: Concurrent client threads, each owning a private ShardRouter.
    clients: int = 8
    #: Batches each client pushes through the cluster.
    batches_per_client: int = 6
    #: Jobs per batch (sampled, with replacement, from the job universe).
    batch_jobs: int = 8
    #: Chaos schedule seed — same seed, same kill/stall/revive sequence.
    seed: int = 1337
    #: Seconds between chaos events (kill / stall / revive decisions).
    chaos_interval_s: float = 1.0
    #: Ceiling on the run; the harness fails rather than hang past it.
    deadline_s: float = 120.0
    #: Gossip heartbeat interval handed to every shard.
    heartbeat_interval_s: float = 0.25
    #: How long a SIGSTOP stall lasts before SIGCONT.
    stall_s: float = 1.0
    #: Client-side request timeout (short: stalled shards must be
    #: detected in seconds, not the 300 s interactive default).
    client_timeout_s: float = 10.0
    #: Router probe knobs: fast backoff so re-admission happens within
    #: a short soak window.
    probe_base_s: float = 0.2
    probe_cap_s: float = 2.0
    #: Job size (small on purpose; the soak tests plumbing, not IPC).
    n_uops: int = 2000
    warmup: int = 1000
    #: Shared-secret token for the fleet (auth stays on under chaos).
    token: str = "soak-secret"
    #: Workload / predictor pools for the job universe.
    workloads: tuple = SOAK_WORKLOADS
    predictors: tuple = SOAK_PREDICTORS


@dataclass
class SoakReport:
    """What a soak run observed; :meth:`passed` is the acceptance bar."""

    batches_completed: int = 0
    batches_lost: int = 0
    jobs_completed: int = 0
    unique_jobs: int = 0
    mismatched_keys: list = field(default_factory=list)
    journal_records: int = 0
    journal_corrupt: int = 0
    resimulated: int = 0
    kills: int = 0
    stalls: int = 0
    revives: int = 0
    probes: int = 0
    readmissions: int = 0
    failovers: int = 0
    gossip_merges: int = 0
    wall_s: float = 0.0

    def passed(self) -> bool:
        """Zero lost batches, zero wrong bits."""
        return self.batches_lost == 0 and not self.mismatched_keys

    def to_dict(self) -> dict:
        return {
            "passed": self.passed(),
            "batches_completed": self.batches_completed,
            "batches_lost": self.batches_lost,
            "jobs_completed": self.jobs_completed,
            "unique_jobs": self.unique_jobs,
            "mismatched_keys": list(self.mismatched_keys),
            "journal_records": self.journal_records,
            "journal_corrupt": self.journal_corrupt,
            "resimulated": self.resimulated,
            "kills": self.kills,
            "stalls": self.stalls,
            "revives": self.revives,
            "probes": self.probes,
            "readmissions": self.readmissions,
            "failovers": self.failovers,
            "gossip_merges": self.gossip_merges,
            "wall_s": round(self.wall_s, 3),
        }


class _Shard:
    """One shard subprocess the chaos loop owns: spawn, kill, revive."""

    def __init__(self, port_hint: int = 0):
        self.port = port_hint      # 0 until the kernel picks one
        self.address: str | None = None
        self.proc: subprocess.Popen | None = None
        self.stopped = False       # SIGSTOPped right now

    @property
    def alive(self) -> bool:
        return (self.proc is not None and self.proc.poll() is None
                and not self.stopped)


def _repo_src() -> str:
    return str(Path(__file__).resolve().parents[2])


def _spawn_shard(shard: _Shard, config: SoakConfig,
                 journal_dir: Path) -> None:
    """Start (or restart) *shard* as a ``repro cluster serve`` process.

    First spawn binds port 0 and learns the kernel's pick from the ready
    line; revivals re-bind the *same* port, so the fleet's addresses —
    and therefore its ring, journals and routers — are stable across
    deaths.  ``REPRO_SHM=0`` because a SIGKILL-ed daemon cannot unlink
    shared-memory segments.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (_repo_src(), env.get("PYTHONPATH", "")) if p)
    env["REPRO_SERVICE_TOKEN"] = config.token
    env["REPRO_SHM"] = "0"
    env.pop("REPRO_FAULTS", None)  # chaos here is real signals, not faults
    # stdout=DEVNULL matters beyond tidiness: a SIGKILL-ed shard's pool
    # workers outlive it, and if they inherited *this* process's stdout
    # they hold the pipe open — a CI log collector (or `soak | tee`)
    # would then wait on EOF forever after the harness itself exited.
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "-j", "1", "cluster", "serve",
         "--listen", f"127.0.0.1:{shard.port}",
         "--journal-dir", str(journal_dir),
         "--heartbeat-interval", str(config.heartbeat_interval_s)],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
        text=True,
    )
    try:
        line = proc.stderr.readline()
        match = re.search(r"listen=(tcp://\S+)", line)
        if not match:
            raise ServiceError(f"shard printed no ready line: {line!r}")
        shard.address = match.group(1)
        shard.port = int(shard.address.rsplit(":", 1)[1])
        shard.proc = proc
        shard.stopped = False
        # The pipe must keep draining or a chatty shard blocks on it.
        threading.Thread(target=_drain, args=(proc.stderr,),
                         daemon=True).start()
    except Exception:
        proc.kill()
        raise


def _drain(pipe) -> None:
    try:
        for _ in pipe:
            pass
    except (OSError, ValueError):
        pass


def _job_universe(config: SoakConfig) -> list[SimJob]:
    return [
        SimJob.make(workload, predictor, n_uops=config.n_uops,
                    warmup=config.warmup)
        for predictor in config.predictors
        for workload in config.workloads
    ]


def _client_worker(index: int, config: SoakConfig, addresses: list[str],
                   universe: list[SimJob], oracle: dict,
                   report: SoakReport, lock: threading.Lock,
                   deadline: float) -> None:
    """One soak client: submit batches, retry through outages, verify.

    Owns a private :class:`ShardRouter` (its own probation state and
    membership view — the self-healing path is per-client, there is no
    shared coordinator to cheat through).  A batch is *lost* only if it
    still cannot complete by the harness deadline with every retry and
    forced probe exhausted — the zero-loss invariant the soak exists to
    prove.
    """
    rng = random.Random((config.seed << 16) ^ index)
    router = ShardRouter(addresses, token=config.token,
                         timeout=config.client_timeout_s,
                         probe_base=config.probe_base_s,
                         probe_cap=config.probe_cap_s)
    try:
        for batch_index in range(config.batches_per_client):
            batch = [universe[rng.randrange(len(universe))]
                     for _ in range(config.batch_jobs)]
            done = False
            while time.monotonic() < deadline:
                try:
                    results = router.run_jobs(batch)
                except ServiceUnavailable:
                    time.sleep(min(1.0, config.probe_base_s * 4))
                    continue
                with lock:
                    report.batches_completed += 1
                    report.jobs_completed += len(results)
                    for job, result in zip(batch, results):
                        key = job.content_key()
                        if result != oracle[key] and \
                                key not in report.mismatched_keys:
                            report.mismatched_keys.append(key)
                done = True
                break
            if not done:
                with lock:
                    report.batches_lost += 1
            # Pull the gossiped view occasionally: exercises the router
            # subscription path (and accelerates probe timers).
            if batch_index % 2 == 1:
                try:
                    router.refresh_membership()
                except Exception:  # noqa: BLE001 - fail-open by design
                    pass
        with lock:
            report.probes += router.stats["probes"]
            report.readmissions += router.stats["readmissions"]
            report.failovers += router.stats["failovers"]
            report.gossip_merges += router.stats["gossip_merges"]
    finally:
        router.close()


def _chaos_step(rng: random.Random, fleet: list[_Shard],
                config: SoakConfig, journal_dir: Path,
                report: SoakReport, log) -> None:
    """One seeded chaos event: revive a corpse, or hurt a live shard.

    Never touches the last healthy shard — the soak proves healing, and
    a fleet with zero capacity heals nothing (routers would just block
    on their retry loops until the deadline).
    """
    dead = [s for s in fleet if s.proc is not None and
            s.proc.poll() is not None]
    # Revive first: corpses must come back or later kills would drain
    # the fleet to its floor and the schedule degenerates.
    if dead and rng.random() < 0.6:
        shard = rng.choice(dead)
        _spawn_shard(shard, config, journal_dir)
        report.revives += 1
        log(f"soak: revived {shard.address}")
        return
    healthy = [s for s in fleet if s.alive]
    stopped = [s for s in fleet if s.stopped and s.proc is not None
               and s.proc.poll() is None]
    if stopped:  # always resume stalls before considering new damage
        for shard in stopped:
            shard.proc.send_signal(signal.SIGCONT)
            shard.stopped = False
            log(f"soak: resumed {shard.address}")
        return
    if len(healthy) <= 1:
        return
    shard = rng.choice(healthy)
    if rng.random() < 0.5:
        shard.proc.send_signal(signal.SIGKILL)
        shard.proc.wait()
        report.kills += 1
        log(f"soak: SIGKILLed {shard.address}")
    else:
        shard.proc.send_signal(signal.SIGSTOP)
        shard.stopped = True
        report.stalls += 1
        log(f"soak: stalled {shard.address} for {config.stall_s:g}s")


def run_soak(config: SoakConfig, journal_dir: str | os.PathLike,
             log=None) -> SoakReport:
    """Run one full soak; returns the report (check :meth:`~SoakReport.passed`).

    *journal_dir* is the fleet's shared ``--journal-dir``; the caller
    owns its lifetime (a tmpdir in tests, a scratch dir under the CLI).
    *log* is called with progress lines (``None`` silences them).
    """
    log = log or (lambda line: None)
    journal_dir = Path(journal_dir)
    journal_dir.mkdir(parents=True, exist_ok=True)
    universe = _job_universe(config)
    log(f"soak: oracle — {len(universe)} unique jobs, serial in-process")
    oracle_engine = Engine(executor=SerialExecutor(), cache=ResultCache(None))
    oracle = {job.content_key(): result
              for job, result in zip(universe,
                                     oracle_engine.run_jobs(universe))}
    report = SoakReport(unique_jobs=len(universe))
    started = time.monotonic()
    deadline = started + config.deadline_s
    fleet = [_Shard() for _ in range(config.shards)]
    for shard in fleet:
        _spawn_shard(shard, config, journal_dir)
    addresses = [shard.address for shard in fleet]
    log(f"soak: fleet up — {', '.join(addresses)}")
    lock = threading.Lock()
    clients = [
        threading.Thread(
            target=_client_worker,
            args=(index, config, addresses, universe, oracle, report,
                  lock, deadline),
            daemon=True)
        for index in range(config.clients)
    ]
    rng = random.Random(config.seed)
    try:
        for thread in clients:
            thread.start()
        next_chaos = started + config.chaos_interval_s
        stall_until = 0.0
        while any(thread.is_alive() for thread in clients):
            if time.monotonic() >= deadline:
                break
            now = time.monotonic()
            if now >= next_chaos and now >= stall_until:
                _chaos_step(rng, fleet, config, journal_dir, report, log)
                next_chaos = now + config.chaos_interval_s
                if any(s.stopped for s in fleet):
                    stall_until = now + config.stall_s
            time.sleep(0.05)
        for thread in clients:
            thread.join(timeout=max(0.0, deadline - time.monotonic()) + 5.0)
    finally:
        for shard in fleet:  # let SIGSTOPped shards die
            if shard.proc is not None and shard.stopped:
                try:
                    shard.proc.send_signal(signal.SIGCONT)
                except OSError:
                    pass
        for shard in fleet:
            if shard.proc is not None and shard.proc.poll() is None:
                shard.proc.terminate()
        for shard in fleet:
            if shard.proc is not None:
                try:
                    shard.proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    shard.proc.kill()
                    shard.proc.wait()
    report.wall_s = time.monotonic() - started
    # Re-simulation accounting: every executed job appended one fsync'd
    # journal record (SIGKILL cannot un-write them), so records beyond
    # the count of *distinct* journaled keys are exactly the executions
    # redone because a shard died with work the fleet hadn't learned.
    executed_keys: set[str] = set()
    for path in sorted(journal_dir.glob("*.journal")):
        snapshot = read_journal_snapshot(path)
        report.journal_records += snapshot["records"]
        report.journal_corrupt += snapshot["corrupt"]
        executed_keys.update(snapshot["entries"])
    report.resimulated = max(
        0, report.journal_records - len(executed_keys))
    log(f"soak: done in {report.wall_s:.1f}s — "
        f"{report.batches_completed} batches, "
        f"{report.batches_lost} lost, "
        f"{len(report.mismatched_keys)} mismatched, "
        f"{report.kills} kills / {report.stalls} stalls / "
        f"{report.revives} revives, "
        f"{report.resimulated} job(s) re-simulated, "
        f"{report.readmissions} re-admission(s)")
    return report
