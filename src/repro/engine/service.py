"""The simulation service daemon: one cache, one journal, many clients.

``repro serve`` runs a :class:`SimService`: a persistent process that
owns the result cache and a crash-safe completion journal, listens on a
Unix-domain socket, and feeds every client's jobs through one
:class:`~repro.engine.queue.JobQueue` on a persistent
:class:`~repro.engine.queue.WorkerPool`.  Because all clients share the
daemon's cache *and* its in-flight job set, overlapping submissions from
concurrent clients simulate each unique spec exactly once — the
"shared hot cache" serving story the ROADMAP asks for.

The same daemon also serves the cluster plane (:mod:`repro.engine.cluster`):
``--listen host:port`` binds a TCP socket instead of (not in addition to)
the Unix one, speaking the identical newline-JSON protocol, so N daemons
on N ports become shards behind a :class:`~repro.engine.cluster.ShardRouter`.
TCP mode adds two things Unix mode never needed:

* **auth** — a shared-secret token (``--token`` / ``$REPRO_SERVICE_TOKEN``).
  When configured, every request must carry ``"token"``; a mismatch is
  answered ``{"ok": false, "auth": true, ...}`` (constant-time compare),
  which clients raise as a non-retryable
  :class:`~repro.engine.client.ServiceAuthError`.
* **cache federation** — ``--peer`` addresses name sibling shards.  On a
  ``submit`` whose keys miss the local cache, the daemon first asks its
  peers (the ``lookup`` op: key in, cached result out, deliberately
  accounting-neutral and never recursive) and seeds any answers into its
  own cache, so work one shard finished is never re-simulated by another.
  Peer probes ride a short deadline and fail open: an unreachable peer
  costs a counter tick (``metrics``), never a stalled submit.

Protocol: newline-delimited JSON request/response over the socket.  One
request per line, one response line per request, connections may pipeline
many requests.  Requests are ``{"op": <name>, ...}``; responses are
``{"ok": true, ...}`` or ``{"ok": false, "error": <message>}``.  Ops:

``ping``
    Liveness + server identity (pid, protocol version, worker count).
``submit``
    ``{"jobs": [<SimJob.to_dict()>, ...], "wait": bool}``.  With
    ``wait`` (the default) the response carries the results, in
    submission order, once all jobs finish; without it, a ticket id to
    poll via ``results``.  Either way the response's ``summary`` says how
    the batch was satisfied (cache hits / coalesced / enqueued).
``results``
    ``{"ticket": <id>}`` — the batch's results if complete, else a
    progress report.
``status``
    Queue depth, per-worker state, lifetime counters, cache stats,
    journal location, open tickets.
``health``
    Cheap liveness/degradation snapshot: worker aliveness, queue depth
    vs. bound, timeout/rejection counters and the degraded-mode flags
    (journal, cache or shm failures the daemon absorbed).
``chaos``
    The active fault-injection plan (:mod:`repro.engine.faults`) — site
    hit counts and fired rules.  Only served when the daemon was started
    with chaos enabled (``repro serve --chaos``); refused otherwise.
``metrics``
    The flat ops surface the cluster plane scrapes: queue depth and
    in-flight jobs, cache hit/miss/store counters, peer-federation
    counters, fast-path fallback counters and fault-plane state — one
    JSON object per shard, aggregated by ``repro cluster status``.
``lookup``
    ``{"keys": [<content key>, ...]}`` — answer from the local cache
    only (:meth:`~repro.engine.cache.ResultCache.peek`; no queueing, no
    peer recursion).  This is the server half of cache federation.
``gossip``
    ``{"view": {...}}`` — merge the caller's membership view
    (:class:`~repro.engine.cluster.MembershipView` wire form) and answer
    with the daemon's merged view plus its own ``(epoch, beat)``.  TCP
    shards also *initiate* these rounds among themselves every
    ``--heartbeat-interval`` seconds: a peer that stops answering is
    claimed down (same-version ``down`` wins), a revived peer's higher
    epoch supersedes its own corpse, and routers polling any shard see
    the converged view — the self-healing membership plane.
``seed``
    ``{"entries": {<content key>: <SimResult.to_dict()>, ...}}`` — fold
    results into the local cache (existing entries win).  The warm-push
    receiver: shards proactively push completed keys to their ring
    successor under a byte/ops budget so failover targets are warm.
``shutdown``
    Stop the daemon after acknowledging.

Overload: with a queue bound configured (``--queue-bound`` /
``$REPRO_QUEUE_BOUND``), a ``submit`` the queue cannot admit is answered
``{"ok": false, "overloaded": true, ...}`` — an explicit backpressure
signal the client turns into :class:`~repro.engine.client.ServiceOverloaded`
and retries with backoff, instead of the daemon either growing without
bound or silently hanging the caller.

Crash safety is inherited from PR 3's journal machinery: every executed
job is appended (``fsync`` per record) to the service journal, and a
restarted daemon replays it into the cache, so completed work survives
daemon restarts as well as worker deaths (the queue requeues those).
Shards given a shared ``--journal-dir`` extend this across *process
boundaries*: each shard journals to ``<dir>/<address>.journal`` (with a
membership meta record persisting its epoch), and when gossip claims a
member down, the survivors read its journal (read-only, no lock — the
owner may revive) and seed the keys the ring now assigns to them, so a
dead shard's completed work is never re-simulated by its inheritors.
Two daemons can never share a journal or a socket: the journal file is
``flock``-ed by its writer, and the daemon holds a lockfile next to its
socket, so the stale-socket cleanup path cannot race a live daemon.

See docs/architecture.md for the full data-flow picture.
"""

from __future__ import annotations

import asyncio
import hmac
import json
import os
import re
import signal
import sys
import time
from collections import deque
from pathlib import Path

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro.engine import faults
from repro.engine.cache import ResultCache, default_cache_dir
from repro.engine.checkpoint import (
    CampaignJournal,
    JournalHeader,
    read_journal_snapshot,
)
from repro.engine.cluster import (
    HashRing,
    MemberState,
    MembershipView,
    normalize_shard,
)
from repro.engine.executors import resolve_jobs
from repro.engine.job import SimJob
from repro.engine.queue import (
    JobFailed,
    JobQueue,
    QueueOverloaded,
    WorkerPool,
)
from repro.pipeline.result import SimResult

#: Environment variable naming the default service socket path.
SOCKET_ENV = "REPRO_SERVICE_SOCKET"

#: Environment variable holding the shared-secret auth token (TCP mode).
TOKEN_ENV = "REPRO_SERVICE_TOKEN"

#: Fallback socket path when neither ``--socket`` nor the env var is set.
DEFAULT_SOCKET = "repro-service.sock"

#: Wire protocol version, echoed by ``ping`` and checked by clients.
#: v2 added TCP transport, token auth and the ``metrics``/``lookup`` ops.
PROTOCOL_VERSION = 2

#: Maximum request/response line length (a 20-job grid is ~20 KB).
MAX_LINE = 64 * 1024 * 1024

#: Most jobs one ``submit`` may carry — an admission bound on request
#: *width* to complement the queue-depth bound on request *volume*.
MAX_SUBMIT_JOBS = 4096

#: Deadline for one peer-cache probe.  Short on purpose: federation is
#: an optimisation, and a dead peer must cost milliseconds, not stall
#: every submit behind a 300-second client-style timeout.
PEER_LOOKUP_TIMEOUT = 2.0

#: Most tickets a daemon remembers; beyond this, the oldest *completed*
#: tickets are forgotten first (a never-polled ``--no-wait`` submission
#: must not grow daemon memory forever).
MAX_TICKETS = 1024

#: Header binding a service journal.  Unlike a campaign journal, the
#: service's job set is open-ended, so the binding key is a constant: any
#: service journal can resume any service (entries are still keyed by job
#: content key, so replay is exact).
SERVICE_JOURNAL_CAMPAIGN = "__service__"
SERVICE_JOURNAL_KEY = "service-v1"

#: Environment variable overriding the gossip heartbeat interval
#: (seconds; ``0`` disables the loop, the ``gossip`` op still answers).
HEARTBEAT_ENV = "REPRO_HEARTBEAT_INTERVAL"

#: Default heartbeat interval for TCP shards.  One round per second
#: keeps convergence well under any human-visible failover window while
#: costing one tiny protocol round per peer.
DEFAULT_HEARTBEAT = 1.0

#: Environment variable overriding the per-cycle warm-push byte budget
#: (``0`` disables push-based cache warming).
WARM_PUSH_BUDGET_ENV = "REPRO_WARM_PUSH_BUDGET"

#: Default warm-push budget: bytes of result payloads pushed to ring
#: successors per drain cycle.  Results are ~1 KB, so this is ~1000
#: completions per cycle — far above any realistic completion rate.
DEFAULT_WARM_PUSH_BUDGET = 1024 * 1024

#: Most entries one warm-push cycle ships (the ops half of the budget).
WARM_PUSH_MAX_OPS = 256

#: Completion buffer bound: under a stalled successor, oldest warm-push
#: candidates are dropped first (they are an optimisation, never owed).
WARM_BUFFER_MAX = 4096

#: Most entries one ``seed`` request may carry.
MAX_SEED_ENTRIES = 1024

#: Environment variable naming the shared cluster journal directory
#: (each shard journals to ``<dir>/<address>.journal``).
JOURNAL_DIR_ENV = "REPRO_JOURNAL_DIR"


def resolve_heartbeat_interval(explicit: float | None = None) -> float:
    """The gossip heartbeat interval: explicit, else env, else default.

    ``0`` (or negative) disables the proactive gossip loop — the shard
    still answers the ``gossip`` op, it just never initiates rounds.
    """
    if explicit is not None:
        return max(0.0, float(explicit))
    raw = os.environ.get(HEARTBEAT_ENV, "").strip()
    if raw:
        try:
            return max(0.0, float(raw))
        except ValueError:
            return DEFAULT_HEARTBEAT
    return DEFAULT_HEARTBEAT


def resolve_warm_push_budget(explicit: int | None = None) -> int:
    """The warm-push byte budget: explicit, else env, else default."""
    if explicit is not None:
        return max(0, int(explicit))
    raw = os.environ.get(WARM_PUSH_BUDGET_ENV, "").strip()
    if raw:
        try:
            return max(0, int(raw))
        except ValueError:
            return DEFAULT_WARM_PUSH_BUDGET
    return DEFAULT_WARM_PUSH_BUDGET


def journal_slug(address: str) -> str:
    """The journal filename a shard uses inside a shared ``--journal-dir``.

    Derived from the shard's canonical address so survivors can find a
    dead member's journal without scanning: filesystem-hostile
    characters collapse to ``-`` (``tcp://127.0.0.1:7101`` →
    ``127.0.0.1-7101.journal``).
    """
    text = normalize_shard(address)
    if text.startswith("tcp://"):
        text = text[len("tcp://"):]
    return re.sub(r"[^A-Za-z0-9_.-]+", "-", text) + ".journal"


def parse_wire_result(raw: object) -> "SimResult | None":
    """Parse a result payload from a peer; ``None`` for junk.

    Warm pushes and federation lookups cross process boundaries, so a
    malformed entry must cost nothing.  :meth:`SimResult.from_dict`
    defaults every field, which would let an arbitrary mapping parse
    into a vacuous result — require the identity fields a real
    ``to_dict()`` payload always carries before trusting it.
    """
    if not isinstance(raw, dict):
        return None
    if not {"workload", "n_uops", "cycles"} <= raw.keys():
        return None
    try:
        return SimResult.from_dict(raw)
    except (KeyError, TypeError, ValueError):
        return None


def default_socket_path(explicit: str | os.PathLike | None = None) -> Path:
    """Resolve the service socket path (flag, else env, else cwd default)."""
    if explicit:
        return Path(explicit)
    raw = os.environ.get(SOCKET_ENV, "").strip()
    return Path(raw) if raw else Path(DEFAULT_SOCKET)


def resolve_service_token(explicit: str | None = None) -> str | None:
    """Resolve the shared-secret token (flag, else env, else none).

    ``None`` disables auth entirely — the Unix-socket default, where
    filesystem permissions already gate access.  TCP deployments should
    always set one.
    """
    if explicit:
        return explicit
    raw = os.environ.get(TOKEN_ENV, "").strip()
    return raw or None


def parse_address(address: str | os.PathLike) -> tuple:
    """Split a service address into ``("tcp", host, port)`` or
    ``("unix", path)``.

    TCP addresses must be explicit — ``tcp://host:port`` — because a
    bare string containing a colon is a perfectly legal Unix socket
    path; guessing would mis-route someone's ``./run:1/svc.sock``.
    """
    text = str(address)
    if text.startswith("tcp://"):
        host, sep, port = text[len("tcp://"):].rpartition(":")
        if not sep or not host or not port.isdigit():
            raise ValueError(
                f"bad service address {text!r} (want tcp://host:port)")
        return ("tcp", host, int(port))
    return ("unix", text)


def parse_listen(listen: str) -> tuple[str, int]:
    """Parse a ``--listen`` value (``host:port``, ``tcp://`` optional).

    Port ``0`` is valid and means "kernel picks": the daemon's ready
    line and ``ping`` report the actual bound port, which is how the
    test harness runs many shards without port coordination.
    """
    text = str(listen)
    if text.startswith("tcp://"):
        text = text[len("tcp://"):]
    host, sep, port = text.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"bad --listen {listen!r} (want host:port)")
    return (host or "127.0.0.1", int(port))


class SimService:
    """A running daemon: socket server + job queue + cache + journal."""

    def __init__(
        self,
        socket_path: str | os.PathLike | None = None,
        *,
        workers: int | None = None,
        cache: ResultCache | None = None,
        journal_path: str | os.PathLike | None = None,
        max_depth: int | None = None,
        job_timeout: float | None = None,
        chaos: bool = False,
        listen: str | None = None,
        token: str | None = None,
        peers: list[str] | None = None,
        journal_dir: str | os.PathLike | None = None,
        heartbeat_interval: float | None = None,
        warm_push_budget: int | None = None,
    ):
        self.socket_path = default_socket_path(socket_path)
        #: TCP bind (host, port) when serving a cluster shard; ``None``
        #: keeps the Unix-socket transport.  The two are exclusive — a
        #: shard *is* a plain daemon on a different transport.
        self.listen = parse_listen(listen) if listen else None
        #: Actual bound address (``tcp://host:port``) once started;
        #: meaningful with ``--listen host:0``.
        self.listen_address: str | None = None
        self.token = resolve_service_token(token)
        #: Sibling shard addresses consulted by the cache-federation
        #: read-through (each ``tcp://host:port`` or a Unix socket path).
        self.peers = [str(peer) for peer in (peers or [])]
        self.peer_hits = 0
        self.peer_misses = 0
        self.peer_failures = 0
        self.workers = resolve_jobs(workers)
        self.cache = cache if cache is not None else ResultCache(default_cache_dir())
        self.journal_path = Path(journal_path) if journal_path else None
        #: Shared cluster journal directory.  With no explicit
        #: ``journal_path``, a TCP shard journals to
        #: ``<journal_dir>/<address>.journal`` — the layout failover
        #: replay depends on (survivors derive a dead member's journal
        #: path from its gossiped address).
        raw_dir = journal_dir if journal_dir is not None else \
            os.environ.get(JOURNAL_DIR_ENV, "").strip() or None
        self.journal_dir = Path(raw_dir) if raw_dir else None
        self.journal: CampaignJournal | None = None
        self.replayed = 0
        # -- self-healing membership state --------------------------------
        #: This shard's view of the fleet (grown by gossip rounds and by
        #: views callers push through the ``gossip`` op).
        self.membership = MembershipView()
        #: Incarnation counter: persisted in the journal's membership
        #: meta record, so a restarted shard's claims supersede every
        #: claim about its previous life (including its death notice).
        self.epoch = 1
        #: Heartbeats sent this incarnation (the minor version digit).
        self.beat = 0
        self.heartbeat_interval = resolve_heartbeat_interval(
            heartbeat_interval)
        self.gossip_sent = 0
        self.gossip_merged = 0
        self.gossip_failures = 0
        self.gossip_dropped = 0  # injected gossip.heartbeat:drop hits
        #: Peer journals replayed after a death claim: address -> the
        #: member version the replay answered.  A member that dies again
        #: in a *newer* incarnation is replayed again.
        self._replayed_peers: dict[str, tuple[int, int]] = {}
        self.peer_journals_replayed = 0
        self.replay_keys_seeded = 0
        # -- warm-push state ----------------------------------------------
        self.warm_push_budget = resolve_warm_push_budget(warm_push_budget)
        self._warm_buffer: deque[tuple[str, dict]] = deque()
        self._warm_event: asyncio.Event | None = None
        self.warm_pushed = 0
        self.warm_push_failures = 0
        self.warm_seeded = 0    # entries accepted via the seed op
        self.warm_dropped = 0   # buffer overflow / no successor to warm
        self._gossip_task: asyncio.Task | None = None
        self._warm_task: asyncio.Task | None = None
        self.max_depth = max_depth
        self.job_timeout = job_timeout
        #: Whether the ``chaos`` op is served (``repro serve --chaos``).
        self.chaos = bool(chaos)
        self.queue: JobQueue | None = None
        self._server: asyncio.AbstractServer | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._stop_event: asyncio.Event | None = None
        self._tickets: dict[int, dict] = {}
        self._next_ticket = 0
        self._lock_fh = None
        self._started_at: float | None = None

    # -- lifecycle -------------------------------------------------------

    @property
    def lock_path(self) -> Path:
        """The daemon lockfile guarding this socket path."""
        return self.socket_path.with_name(self.socket_path.name + ".lock")

    def _acquire_lock(self) -> None:
        """Take the per-socket daemon lock (advisory flock, non-blocking).

        This is what makes the stale-socket cleanup below race-free: two
        daemons starting simultaneously against one path both see a dead
        socket, but only the lock holder may unlink and rebind.  The lock
        lives next to the socket so it travels with a ``--socket``
        override, and it is released (not leaked) by :meth:`stop` —
        though even a ``SIGKILL``-ed daemon releases a flock with its fd.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            return
        from repro.engine.client import ServiceError

        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        fh = open(self.lock_path, "a+")
        try:
            fcntl.flock(fh.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            fh.close()
            raise ServiceError(
                f"another repro service holds the lock for "
                f"{self.socket_path} (lockfile {self.lock_path}); stop it "
                "first or pick a different --socket"
            ) from None
        self._lock_fh = fh

    def _release_lock(self) -> None:
        if self._lock_fh is not None:
            try:
                self._lock_fh.close()
            except OSError:
                pass
            self._lock_fh = None
            try:
                self.lock_path.unlink()
            except OSError:
                pass

    async def start(self) -> None:
        """Open the journal, start the queue, bind the socket.

        TCP shards bind *first* (without serving) so the kernel-picked
        port is known before the journal opens — the shared-journal-dir
        layout names the journal after the bound address — then open the
        journal, start the queue, and only then start serving, gossiping
        and warm-pushing.
        """
        self._stop_event = asyncio.Event()
        self._started_at = time.monotonic()
        if self.listen is None:
            # The flock + stale-socket dance only exists because Unix
            # socket files outlive their listeners; a TCP bind is
            # exclusive by itself (EADDRINUSE), so shards skip it.
            self._acquire_lock()
        try:
            if self.listen is not None:
                host, port = self.listen
                self._server = await asyncio.start_server(
                    self._handle, host=host, port=port, limit=MAX_LINE,
                    start_serving=False,
                )
                bound = self._server.sockets[0].getsockname()
                self.listen_address = f"tcp://{bound[0]}:{bound[1]}"
                if self.journal_path is None and self.journal_dir is not None:
                    self.journal_dir.mkdir(parents=True, exist_ok=True)
                    self.journal_path = self.journal_dir / journal_slug(
                        self.listen_address)
            if self.journal_path is not None:
                self.journal = CampaignJournal(self.journal_path)
                self.journal.open(JournalHeader(
                    campaign=SERVICE_JOURNAL_CAMPAIGN,
                    key=SERVICE_JOURNAL_KEY,
                    total=0,
                ))
                # Replay completed work into the cache: a restarted daemon
                # answers everything it ever finished without re-simulating.
                for key, result in self.journal.entries.items():
                    self.cache.seed(key, result)
                    self.replayed += 1
                if self.listen is not None:
                    # Epoch = one past every incarnation this journal has
                    # seen, so this shard's claims (and its revival)
                    # supersede any claim about its previous life.
                    self.epoch = 1 + max(
                        (int(meta.get("epoch", 0))
                         for meta in self.journal.meta
                         if meta.get("kind") == "membership"),
                        default=0)
                    try:
                        self.journal.record_meta({
                            "kind": "membership",
                            "address": self.listen_address,
                            "epoch": self.epoch,
                        })
                    except OSError:
                        pass  # degraded journal; the epoch still holds
            self.queue = JobQueue(WorkerPool(self.workers), cache=self.cache,
                                  journal=self.journal,
                                  max_depth=self.max_depth,
                                  job_timeout=self.job_timeout)
            await self.queue.start()
            if self.listen is not None:
                await self._server.start_serving()
                self.membership.observe(MemberState(
                    self.listen_address, self.epoch, self.beat, "up"))
                self._warm_event = asyncio.Event()
                self.queue.on_complete = self._on_job_complete
                loop = asyncio.get_running_loop()
                if self.warm_push_budget > 0:
                    self._warm_task = loop.create_task(self._warm_loop())
                if self.heartbeat_interval > 0:
                    self._gossip_task = loop.create_task(self._gossip_loop())
            else:
                self.socket_path.parent.mkdir(parents=True, exist_ok=True)
                if self.socket_path.exists():
                    # Refuse to hijack a live daemon; only a *stale* socket
                    # (no listener answering ping) is cleaned up and bound
                    # over.  The lockfile taken above makes this race-free.
                    from repro.engine.client import (
                        ServiceError,
                        service_running,
                    )

                    if service_running(self.socket_path):
                        raise ServiceError(
                            f"another repro service is already listening on "
                            f"{self.socket_path}; stop it first or pick a "
                            "different --socket"
                        )
                    self.socket_path.unlink()
                self._server = await asyncio.start_unix_server(
                    self._handle, path=str(self.socket_path), limit=MAX_LINE,
                )
        except BaseException:
            if self._server is not None:
                self._server.close()
                self._server = None
            await self._teardown_queue_and_journal()
            self._release_lock()
            raise

    async def stop(self) -> None:
        """Close the socket, stop the queue, close the journal."""
        for task in (self._gossip_task, self._warm_task):
            if task is not None:
                task.cancel()
                try:
                    # A cancel landing exactly as an inner wait_for
                    # resolves can be swallowed (the task keeps looping),
                    # so bound the wait: on timeout wait_for cancels the
                    # task *again*, and the retry lands on an idle await.
                    await asyncio.wait_for(task, timeout=5.0)
                except (asyncio.TimeoutError, asyncio.CancelledError,
                        Exception):  # noqa: BLE001
                    pass
        self._gossip_task = None
        self._warm_task = None
        if self._server is not None:
            self._server.close()
            # Cancel open client connections before wait_closed(): from
            # Python 3.12.1 wait_closed blocks until every handler ends,
            # and an idle client holding its connection would otherwise
            # hang the shutdown forever.
            for task in list(self._conn_tasks):
                task.cancel()
            if self._conn_tasks:
                await asyncio.gather(*self._conn_tasks,
                                     return_exceptions=True)
            await self._server.wait_closed()
            self._server = None
        await self._teardown_queue_and_journal()
        if self.listen is None:
            try:
                self.socket_path.unlink()
            except OSError:
                pass
            self._release_lock()

    async def _teardown_queue_and_journal(self) -> None:
        if self.queue is not None:
            await self.queue.stop()
            self.queue = None
        if self.journal is not None:
            self.journal.close()
            self.journal = None

    def request_shutdown(self) -> None:
        """Ask the serve loop to exit (safe from signal handlers)."""
        if self._stop_event is not None:
            self._stop_event.set()

    async def serve_until_shutdown(self, on_ready=None) -> None:
        """Run until :meth:`request_shutdown` (the ``shutdown`` op or a
        signal) fires, then tear everything down.

        *on_ready*, if given, is called with the service once the socket
        is bound (e.g. to print the daemon's ready line).
        """
        await self.start()
        if on_ready is not None:
            on_ready(self)
        try:
            await self._stop_event.wait()
        finally:
            await self.stop()

    # -- connection handling --------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # A request line past MAX_LINE: answer with a typed
                    # refusal and hang up.  The buffered tail of the
                    # oversized line cannot be resynchronised, so the
                    # connection is unusable afterwards — but the client
                    # gets a reason instead of a silent reset.
                    refusal = {"ok": False,
                               "error": f"request line exceeds {MAX_LINE} "
                                        "bytes"}
                    writer.write(
                        (json.dumps(refusal, sort_keys=True) + "\n").encode())
                    await writer.drain()
                    break
                if not line:
                    break
                try:
                    request = json.loads(line)
                    if not isinstance(request, dict):
                        raise ValueError("request is not a JSON object")
                except ValueError as exc:
                    response = {"ok": False, "error": f"bad request: {exc}"}
                else:
                    response = await self._dispatch(request)
                data = (json.dumps(response, sort_keys=True) + "\n").encode()
                # Chaos: the service.send site models every way a response
                # can fail to arrive — dropped before any byte is written,
                # cut after a partial write, or the connection severed —
                # which is exactly what the client's timeout/retry path
                # must survive (resubmission is idempotent by content key).
                rule = faults.fire("service.send")
                if rule is not None and rule.action == "stall":
                    await asyncio.sleep(rule.arg if rule.arg else 30.0)
                elif rule is not None:
                    if rule.action == "partial" and len(data) > 1:
                        writer.write(data[: len(data) // 2])
                        await writer.drain()
                    writer.transport.abort()
                    break
                writer.write(data)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Daemon shutting down mid-connection: end the handler task
            # cleanly so loop teardown doesn't log spurious tracebacks.
            pass
        finally:
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.CancelledError):
                pass

    async def _dispatch(self, request: dict) -> dict:
        if self.token is not None:
            supplied = request.get("token")
            if not isinstance(supplied, str) or \
                    not hmac.compare_digest(supplied, self.token):
                # "auth": true lets the client raise the non-retryable
                # ServiceAuthError — resending a bad token cannot help.
                # The constant-time compare keeps the shared secret from
                # leaking through response timing.
                return {"ok": False, "auth": True,
                        "error": "authentication failed: bad or missing "
                                 "token (set REPRO_SERVICE_TOKEN)"}
        op = request.get("op")
        handler = getattr(self, f"_op_{op}", None) if isinstance(op, str) \
            else None
        if handler is None or (isinstance(op, str) and op.startswith("_")):
            return {"ok": False, "error": f"unknown op {op!r}"}
        try:
            return await handler(request)
        except Exception as exc:  # noqa: BLE001 - protocol boundary
            return {"ok": False,
                    "error": f"{type(exc).__name__}: {exc}"}

    # -- ops -------------------------------------------------------------

    def describe_address(self) -> str:
        """The daemon's serving address (TCP bind or Unix socket path)."""
        if self.listen_address is not None:
            return self.listen_address
        if self.listen is not None:  # parsed but not yet bound
            return f"tcp://{self.listen[0]}:{self.listen[1]}"
        return str(self.socket_path)

    async def _op_ping(self, request: dict) -> dict:
        return {
            "ok": True,
            "server": {
                "pid": os.getpid(),
                "protocol": PROTOCOL_VERSION,
                "workers": self.workers,
                "socket": str(self.socket_path),
                "transport": "tcp" if self.listen is not None else "unix",
                "address": self.describe_address(),
                "auth": self.token is not None,
                "peers": len(self.peers),
            },
        }

    async def _op_status(self, request: dict) -> dict:
        tickets = {
            str(ticket_id): {
                "jobs": len(record["futures"]),
                "done": sum(1 for f in record["futures"] if f.done()),
            }
            for ticket_id, record in self._tickets.items()
        }
        return {
            "ok": True,
            "queue": self.queue.describe(),
            "cache": self.cache.stats(),
            "journal": {
                "path": str(self.journal_path) if self.journal_path else None,
                "entries": self.journal.done if self.journal else 0,
                "replayed": self.replayed,
            },
            "tickets": tickets,
        }

    async def _op_health(self, request: dict) -> dict:
        health = self.queue.health()
        health["pid"] = os.getpid()
        health["chaos"] = self.chaos and faults.active_plan() is not None
        return {"ok": True, "health": health}

    async def _op_chaos(self, request: dict) -> dict:
        if not self.chaos:
            return {"ok": False,
                    "error": "chaos introspection is disabled; start the "
                             "daemon with `repro serve --chaos`"}
        plan = faults.active_plan()
        return {"ok": True,
                "plan": plan.describe() if plan is not None else None}

    async def _op_metrics(self, request: dict) -> dict:
        """The per-shard ops surface the cluster plane scrapes.

        One flat JSON object: identity, queue pressure (depth / pending /
        in-flight), cache effectiveness, peer-federation counters,
        fast-path fallback counters and fault-plane state.  Everything a
        ``repro cluster status`` row needs, cheap enough to poll.
        """
        from repro.pipeline.fastsim import fallback_stats

        queue = self.queue.describe()
        workers = queue["workers"]
        cache = self.cache.stats()
        plan = faults.active_plan()
        uptime = (time.monotonic() - self._started_at
                  if self._started_at is not None else 0.0)
        return {
            "ok": True,
            "metrics": {
                "shard": {
                    "pid": os.getpid(),
                    "address": self.describe_address(),
                    "transport": "tcp" if self.listen is not None
                                 else "unix",
                    "workers": self.workers,
                    "uptime_s": round(uptime, 3),
                },
                "queue": {
                    "depth": queue["depth"],
                    "pending": queue["pending"],
                    "in_flight": sum(1 for w in workers
                                     if w["task"] is not None),
                    "workers_alive": sum(1 for w in workers if w["alive"]),
                    "max_depth": queue["max_depth"],
                    "restarts": queue["restarts"],
                    "stats": queue["stats"],
                },
                "cache": {
                    "hits": cache["memory_hits"] + cache["disk_hits"],
                    "misses": cache["misses"],
                    "stores": cache["stores"],
                    "memory_entries": cache["memory_entries"],
                    "disk_entries": cache["disk_entries"],
                    "write_failures": cache["write_failures"],
                },
                "peers": {
                    "configured": len(self.peers),
                    "hits": self.peer_hits,
                    "misses": self.peer_misses,
                    "failures": self.peer_failures,
                },
                "membership": {
                    "address": self.describe_address(),
                    "epoch": self.epoch,
                    "beat": self.beat,
                    "size": len(self.membership),
                    "alive": self.membership.alive(),
                    "gossip": {
                        "interval_s": self.heartbeat_interval,
                        "sent": self.gossip_sent,
                        "merged": self.gossip_merged,
                        "failures": self.gossip_failures,
                        "dropped": self.gossip_dropped,
                    },
                },
                "warm": {
                    "budget_bytes": self.warm_push_budget,
                    "pushed": self.warm_pushed,
                    "push_failures": self.warm_push_failures,
                    "seeded": self.warm_seeded,
                    "dropped": self.warm_dropped,
                    "buffered": len(self._warm_buffer),
                },
                "replay": {
                    "startup_replayed": self.replayed,
                    "peers_replayed": self.peer_journals_replayed,
                    "keys_seeded": self.replay_keys_seeded,
                },
                "fallbacks": fallback_stats(),
                "faults": {
                    "active": plan is not None,
                    "fired": (sum(plan.fired.values())
                              if plan is not None else 0),
                },
                "tickets": len(self._tickets),
            },
        }

    async def _op_lookup(self, request: dict) -> dict:
        """Answer peer cache probes from the local cache only.

        Strictly local (:meth:`ResultCache.peek`): no queueing, no
        accounting, and — critically — no further peer fan-out, so a
        federation probe can never recurse around the ring.
        """
        keys = request.get("keys")
        if not isinstance(keys, list) or \
                not all(isinstance(k, str) for k in keys):
            return {"ok": False,
                    "error": "lookup needs a 'keys' list of content keys"}
        found = {}
        for key in keys:
            result = self.cache.peek(key)
            if result is not None:
                found[key] = result.to_dict()
        return {"ok": True, "found": found}

    # -- membership gossip ------------------------------------------------

    def _cluster_ring(self) -> HashRing:
        """The ring this shard believes in: alive members, else peers.

        Built from the gossiped membership view (always including this
        shard); before gossip has learned anything the configured peer
        list stands in, so warm push and replay filtering work even on a
        gossip-disabled fleet.
        """
        members = set(self.membership.alive())
        if self.listen_address is not None:
            members.add(self.listen_address)
        if len(members) < 2:
            members.update(normalize_shard(peer) for peer in self.peers)
        return HashRing(sorted(members))

    def _note_member_down(self, address: str) -> None:
        """Claim *address* down at its current version (down wins ties).

        A member we never heard a claim about is entered at version
        ``(0, 0)`` — any genuine heartbeat (epoch ≥ 1) supersedes it.
        """
        current = self.membership.get(address)
        if current is None:
            self.membership.observe(MemberState(address, 0, 0, "down"))
        elif current.status == "up":
            self.membership.observe(MemberState(
                address, current.epoch, current.beat, "down"))

    def _self_refute(self) -> None:
        """Outrank any merged claim about *this* shard (SWIM refutation).

        A view can carry a death notice or a stale higher beat for our
        own address (e.g. written while a previous incarnation died).
        Jump our logical clock past it and re-assert ``up`` — with the
        journal-persisted epoch this is a no-op belt-and-braces; without
        a journal it is what lets a restarted shard reclaim its name.
        """
        if self.listen_address is None:
            return
        me = self.membership.get(self.listen_address)
        if me is not None and (me.status == "down" or
                               me.version > (self.epoch, self.beat)):
            self.epoch = max(self.epoch, me.epoch)
            self.beat = max(self.beat, me.beat) + 1
        self.membership.observe(MemberState(
            self.listen_address, self.epoch, self.beat, "up"))

    def _gossip_targets(self) -> list[str]:
        """Everyone worth heartbeating: configured peers ∪ known members."""
        targets = {normalize_shard(peer) for peer in self.peers}
        targets.update(self.membership.members)
        targets.discard(self.listen_address)
        return sorted(targets)

    async def _gossip_round(self) -> None:
        """One heartbeat round: advance the beat, exchange with everyone.

        Per-target, the ``gossip.heartbeat`` fault site may ``drop`` the
        heartbeat (the target simply isn't contacted — convergence slows,
        correctness cannot care) or ``delay`` it (sleep before sending).
        A target that fails the exchange is claimed down at its current
        version; the claim spreads on subsequent rounds and any survivor
        owning its keys replays its journal.
        """
        self.beat += 1
        self._self_refute()
        for target in self._gossip_targets():
            rule = faults.fire("gossip.heartbeat")
            if rule is not None and rule.action == "drop":
                self.gossip_dropped += 1
                continue
            if rule is not None and rule.action == "delay":
                await asyncio.sleep(rule.arg if rule.arg
                                    else self.heartbeat_interval)
            try:
                response = await self._peer_request(
                    target, {"op": "gossip",
                             "view": self.membership.to_dict()})
            except asyncio.CancelledError:
                raise
            except Exception:  # noqa: BLE001 - claim the peer down
                self.gossip_failures += 1
                self._note_member_down(target)
                continue
            self.gossip_sent += 1
            self.gossip_merged += self.membership.merge(
                response.get("view"))
        self._self_refute()
        await self._replay_down_members()

    async def _gossip_loop(self) -> None:
        """Background heartbeat: one gossip round per interval."""
        try:
            while True:
                await asyncio.sleep(self.heartbeat_interval)
                await self._gossip_round()
        except asyncio.CancelledError:
            pass

    async def _replay_down_members(self) -> None:
        """Inherit dead members' journaled work (failover replay).

        For every member currently claimed down whose death we have not
        yet answered, read its journal from the shared ``--journal-dir``
        (tolerantly, without locking — the owner may be mid-revival) and
        seed every entry the ring now assigns to *this* shard.  Ring
        ownership filtering keeps N-shard fleets from all loading
        everything; with one survivor the filter passes everything.
        Strictly fail-open: a missing or damaged journal costs entries,
        never an error — the unseeded keys simply re-simulate.
        """
        if self.journal_dir is None or self.listen_address is None:
            return
        for address, state in list(self.membership.members.items()):
            if state.status != "down" or address == self.listen_address:
                continue
            answered = self._replayed_peers.get(address)
            if answered is not None and answered >= state.version:
                continue
            # Mark before the await: concurrent gossip ops must not
            # replay the same death twice.
            self._replayed_peers[address] = state.version
            path = self.journal_dir / journal_slug(address)
            if not path.exists():
                continue
            snapshot = await asyncio.get_running_loop().run_in_executor(
                None, read_journal_snapshot, path)
            ring = self._cluster_ring()
            seeded = 0
            for key, result in snapshot["entries"].items():
                prefs = ring.preference(key)
                owner = next((s for s in prefs if s != address), None)
                if owner == self.listen_address:
                    self.cache.seed(key, result)
                    seeded += 1
            self.peer_journals_replayed += 1
            self.replay_keys_seeded += seeded

    async def _op_gossip(self, request: dict) -> dict:
        """Merge a caller's membership view; answer with ours.

        The server half of the gossip exchange — shards call it on each
        other every heartbeat, routers call it to subscribe to the
        fleet's eventually-consistent view.  Also triggers failover
        replay when the merged view newly claims a member down.
        """
        view = request.get("view")
        merged = self.membership.merge(view) if view is not None else 0
        self.gossip_merged += merged
        self._self_refute()
        if merged:
            await self._replay_down_members()
        return {
            "ok": True,
            "view": self.membership.to_dict(),
            "epoch": self.epoch,
            "beat": self.beat,
            "merged": merged,
        }

    # -- warm push --------------------------------------------------------

    def _on_job_complete(self, job: SimJob, result) -> None:
        """Queue completion hook: buffer the result for warm push."""
        if self.warm_push_budget <= 0 or self._warm_event is None:
            return
        self._warm_buffer.append((job.content_key(), result.to_dict()))
        while len(self._warm_buffer) > WARM_BUFFER_MAX:
            self._warm_buffer.popleft()
            self.warm_dropped += 1
        self._warm_event.set()

    def _warm_successor(self, ring: HashRing, key: str) -> str | None:
        """Where to warm-push *key*: its failover target (or true owner).

        For a key this shard owns, the next shard in ring preference —
        exactly where the router re-homes the key if this shard dies.
        For a key that landed here off-ring (failover, misroute), the
        true owner.  ``None`` when the fleet has nobody else to warm.
        """
        prefs = ring.preference(key)
        if not prefs or prefs == [self.listen_address]:
            return None
        if prefs[0] == self.listen_address:
            return prefs[1] if len(prefs) > 1 else None
        return prefs[0]

    async def _warm_loop(self) -> None:
        """Drain completion buffers to ring successors, under budget."""
        try:
            while True:
                await self._warm_event.wait()
                self._warm_event.clear()
                await self._drain_warm_buffer()
        except asyncio.CancelledError:
            pass

    async def _drain_warm_buffer(self) -> None:
        """Push one budgeted cycle of completions to their successors.

        Bounded by :data:`WARM_PUSH_MAX_OPS` entries *and*
        :attr:`warm_push_budget` payload bytes per cycle; anything still
        buffered waits for the next completion to re-arm the event.
        Fail-open per target: an unreachable successor ticks
        ``warm_push_failures`` and its entries are dropped — warming is
        an optimisation, the journal/replay path owns durability.
        """
        ring = self._cluster_ring()
        sends: dict[str, dict[str, dict]] = {}
        ops = 0
        spent = 0
        while self._warm_buffer and ops < WARM_PUSH_MAX_OPS and \
                spent < self.warm_push_budget:
            key, payload = self._warm_buffer.popleft()
            target = self._warm_successor(ring, key)
            if target is None:
                self.warm_dropped += 1
                continue
            sends.setdefault(target, {})[key] = payload
            ops += 1
            spent += len(json.dumps(payload, separators=(",", ":")))
        for target, entries in sends.items():
            try:
                await self._peer_request(
                    target, {"op": "seed", "entries": entries})
            except asyncio.CancelledError:
                raise
            except Exception:  # noqa: BLE001 - warming fails open
                self.warm_push_failures += 1
                continue
            self.warm_pushed += len(entries)

    async def _op_seed(self, request: dict) -> dict:
        """Fold pushed results into the local cache (warm-push receiver).

        Existing cache entries win (:meth:`ResultCache.seed` is
        ``setdefault``), malformed entries are skipped not fatal, and
        the request-width bound keeps a confused pusher from shipping
        unbounded payloads.
        """
        entries = request.get("entries")
        if not isinstance(entries, dict):
            return {"ok": False,
                    "error": "seed needs an 'entries' mapping of content "
                             "key to result payload"}
        if len(entries) > MAX_SEED_ENTRIES:
            return {"ok": False,
                    "error": f"seed carries {len(entries)} entries; the "
                             f"per-request bound is {MAX_SEED_ENTRIES}"}
        seeded = 0
        for key, raw in entries.items():
            if not isinstance(key, str):
                continue
            result = parse_wire_result(raw)
            if result is None:
                continue
            self.cache.seed(key, result)
            seeded += 1
        self.warm_seeded += seeded
        return {"ok": True, "seeded": seeded}

    # -- cache federation -------------------------------------------------

    async def _peer_request(self, address: str, payload: dict) -> dict:
        """One short-deadline protocol round against a sibling shard."""
        kind, *where = parse_address(address)
        if kind == "tcp":
            opening = asyncio.open_connection(where[0], where[1],
                                              limit=MAX_LINE)
        else:
            opening = asyncio.open_unix_connection(where[0], limit=MAX_LINE)
        reader, writer = await asyncio.wait_for(opening, PEER_LOOKUP_TIMEOUT)
        try:
            if self.token is not None:
                payload = dict(payload, token=self.token)
            writer.write((json.dumps(payload) + "\n").encode())
            await asyncio.wait_for(writer.drain(), PEER_LOOKUP_TIMEOUT)
            line = await asyncio.wait_for(reader.readline(),
                                          PEER_LOOKUP_TIMEOUT)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except OSError:
                # CancelledError must propagate here: swallowing a cancel
                # that lands during wait_closed() would leave the gossip
                # or warm loop alive after stop() asked it to die.
                pass
        if not line.endswith(b"\n"):
            raise ConnectionResetError("peer closed mid-response")
        response = json.loads(line)
        if not response.get("ok"):
            raise RuntimeError(response.get("error", "peer refused lookup"))
        return response

    async def _peer_fill(self, jobs: list[SimJob]) -> int:
        """Seed the local cache with peers' results for *jobs* (read-through).

        Asks every configured peer (concurrently) for the batch's
        locally-missing content keys and seeds whatever comes back.
        Fails open on every axis — a dead, slow or mid-handshake peer
        only ticks :attr:`peer_failures` — because federation is a
        cross-shard optimisation, never a correctness dependency.
        Returns the number of keys seeded from peers.
        """
        if not self.peers:
            return 0
        missing = []
        for job in jobs:
            key = job.content_key()
            if key not in missing and self.cache.peek(key) is None:
                missing.append(key)
        if not missing:
            return 0

        async def probe(peer: str) -> dict:
            rule = faults.fire("peer.lookup")
            if rule is not None and rule.action == "fail":
                raise ConnectionRefusedError(
                    f"injected peer.lookup failure for {peer}")
            if rule is not None and rule.action == "stall":
                # Out-stall the probe deadline: the submit path must
                # treat a hung peer exactly like a dead one.
                await asyncio.sleep(rule.arg if rule.arg
                                    else PEER_LOOKUP_TIMEOUT * 5)
            response = await self._peer_request(
                peer, {"op": "lookup", "keys": missing})
            return response.get("found", {})

        outcomes = await asyncio.gather(
            *(asyncio.wait_for(probe(peer), PEER_LOOKUP_TIMEOUT * 2)
              for peer in self.peers),
            return_exceptions=True)
        seeded: set[str] = set()
        for outcome in outcomes:
            if isinstance(outcome, BaseException):
                self.peer_failures += 1
                continue
            for key, raw in outcome.items():
                if key not in missing:
                    continue
                result = parse_wire_result(raw)
                if result is None:
                    continue
                self.cache.seed(key, result)
                seeded.add(key)
        self.peer_hits += len(seeded)
        self.peer_misses += len(missing) - len(seeded)
        return len(seeded)

    async def _op_submit(self, request: dict) -> dict:
        raw_jobs = request.get("jobs")
        if not isinstance(raw_jobs, list) or not raw_jobs:
            return {"ok": False, "error": "submit needs a non-empty 'jobs' list"}
        if len(raw_jobs) > MAX_SUBMIT_JOBS:
            return {"ok": False,
                    "error": f"submit carries {len(raw_jobs)} jobs; the "
                             f"per-request bound is {MAX_SUBMIT_JOBS} — "
                             "split the batch"}
        try:
            jobs = [SimJob.from_dict(raw) for raw in raw_jobs]
        except (TypeError, ValueError) as exc:
            return {"ok": False, "error": f"bad job spec: {exc}"}
        peer_hits = await self._peer_fill(jobs)
        try:
            futures, summary = self.queue.submit(jobs)
        except QueueOverloaded as exc:
            # Explicit backpressure, distinguishable from a hard error:
            # the client backs off and resubmits the identical batch
            # (idempotent — content keys dedupe server-side).
            return {"ok": False, "overloaded": True,
                    "depth": self.queue.depth,
                    "max_depth": self.queue.max_depth,
                    "error": str(exc)}
        summary["peer_hits"] = peer_hits
        ticket_id = self._remember_ticket(futures)
        if not request.get("wait", True):
            return {"ok": True, "ticket": ticket_id, "summary": summary}
        results = await self._gather(futures)
        self._tickets.pop(ticket_id, None)
        if isinstance(results, dict):  # error response
            return results
        return {"ok": True, "ticket": ticket_id, "summary": summary,
                "results": results}

    async def _op_results(self, request: dict) -> dict:
        ticket_id = request.get("ticket")
        record = self._tickets.get(ticket_id) if isinstance(ticket_id, int) \
            else None
        if record is None:
            return {"ok": False, "error": f"unknown ticket {ticket_id!r}"}
        futures = record["futures"]
        done = sum(1 for f in futures if f.done())
        if done < len(futures):
            return {"ok": True, "ticket": ticket_id, "pending": True,
                    "done": done, "total": len(futures)}
        # The ticket stays fetchable after completion (re-polls and
        # retries are cheap and idempotent); the bounded ticket table
        # evicts it once it is old enough (:meth:`_remember_ticket`).
        results = await self._gather(futures)
        if isinstance(results, dict):
            return results
        return {"ok": True, "ticket": ticket_id, "pending": False,
                "results": results}

    async def _op_shutdown(self, request: dict) -> dict:
        self.request_shutdown()
        return {"ok": True, "stopping": True}

    def _remember_ticket(self, futures: list[asyncio.Future]) -> int:
        """Record a submission's futures; evict old completed tickets.

        Eviction only considers fully-done tickets (oldest first), so an
        in-flight ``--no-wait`` submission is never forgotten while its
        jobs are still running.
        """
        ticket_id = self._next_ticket
        self._next_ticket += 1
        self._tickets[ticket_id] = {"futures": futures}
        if len(self._tickets) > MAX_TICKETS:
            for old_id in sorted(self._tickets):
                if old_id == ticket_id:
                    continue
                if all(f.done() for f in self._tickets[old_id]["futures"]):
                    del self._tickets[old_id]
                    if len(self._tickets) <= MAX_TICKETS:
                        break
        return ticket_id

    async def _gather(self, futures: list[asyncio.Future]) -> list | dict:
        """Await a batch; job failures become one error response."""
        try:
            results = await asyncio.gather(*futures)
        except JobFailed as exc:
            return {"ok": False, "error": f"job failed: {exc}"}
        return [result.to_dict() for result in results]


def run_service(
    socket_path: str | os.PathLike | None = None,
    *,
    workers: int | None = None,
    cache: ResultCache | None = None,
    journal_path: str | os.PathLike | None = None,
    max_depth: int | None = None,
    job_timeout: float | None = None,
    chaos: bool = False,
    listen: str | None = None,
    token: str | None = None,
    peers: list[str] | None = None,
    journal_dir: str | os.PathLike | None = None,
    heartbeat_interval: float | None = None,
    warm_push_budget: int | None = None,
    install_signal_handlers: bool = True,
    ready_message: bool = True,
) -> int:
    """Blocking entry point behind ``repro serve`` / ``repro cluster serve``.

    Runs the daemon until ``SIGINT``/``SIGTERM`` or a client ``shutdown``
    op.  Returns a process exit code.  With *chaos*, any fault plan in
    ``$REPRO_FAULTS`` is surfaced via the ``chaos`` op and exported to
    spawned workers; unset plans still activate from the environment
    either way (the chaos *flag* only gates introspection, not
    injection — an un-flagged daemon under ``REPRO_FAULTS`` is exactly
    the "operator forgot" scenario the suite tests).  *listen* switches
    the transport to TCP (``host:port``; port 0 lets the kernel pick and
    the ready line reports the bound address), *token* arms shared-secret
    auth, and *peers* names sibling shards for cache federation.
    *journal_dir* points shards at the shared cluster journal directory
    (enabling failover replay), *heartbeat_interval* tunes the gossip
    loop (0 disables it) and *warm_push_budget* bounds push-based cache
    warming in bytes per cycle (0 disables it).
    """
    if chaos:
        # Re-export whatever plan is active so spawn-start workers (which
        # re-import everything) see the same spec and seed.
        faults.install_plan(faults.active_plan(), export_env=True)
    service = SimService(socket_path, workers=workers, cache=cache,
                         journal_path=journal_path, max_depth=max_depth,
                         job_timeout=job_timeout, chaos=chaos,
                         listen=listen, token=token, peers=peers,
                         journal_dir=journal_dir,
                         heartbeat_interval=heartbeat_interval,
                         warm_push_budget=warm_push_budget)

    def _print_ready(svc: SimService) -> None:
        where = svc.cache.directory or "memory-only"
        journal = svc.journal_path or "disabled"
        if svc.listen is not None:
            # Machine-readable on purpose: the cluster harness parses
            # "listen=tcp://host:port" to learn a :0 daemon's real port.
            bind = (f"listen={svc.listen_address} auth="
                    f"{'on' if svc.token else 'off'} peers={len(svc.peers)} "
                    f"epoch={svc.epoch}")
        else:
            bind = f"socket={svc.socket_path}"
        print(f"repro service: {bind} "
              f"workers={svc.workers} cache={where} journal={journal}"
              + (f" (replayed {svc.replayed} journaled results)"
                 if svc.replayed else ""),
              file=sys.stderr, flush=True)

    async def _main() -> None:
        if install_signal_handlers:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(sig, service.request_shutdown)
                except (NotImplementedError, RuntimeError):
                    pass  # non-main thread or platform without support
        await service.serve_until_shutdown(
            on_ready=_print_ready if ready_message else None)

    from repro.engine.checkpoint import JournalError
    from repro.engine.client import ServiceError

    try:
        asyncio.run(_main())
    except (ServiceError, JournalError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        if isinstance(exc, JournalError):
            print("hint: --journal must point at a service journal file — "
                  "not a campaign journal, and not one already in use by "
                  "another daemon", file=sys.stderr)
        return 1
    return 0
