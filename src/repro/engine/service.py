"""The simulation service daemon: one cache, one journal, many clients.

``repro serve`` runs a :class:`SimService`: a persistent process that
owns the result cache and a crash-safe completion journal, listens on a
Unix-domain socket, and feeds every client's jobs through one
:class:`~repro.engine.queue.JobQueue` on a persistent
:class:`~repro.engine.queue.WorkerPool`.  Because all clients share the
daemon's cache *and* its in-flight job set, overlapping submissions from
concurrent clients simulate each unique spec exactly once — the
"shared hot cache" serving story the ROADMAP asks for.

Protocol: newline-delimited JSON request/response over the socket.  One
request per line, one response line per request, connections may pipeline
many requests.  Requests are ``{"op": <name>, ...}``; responses are
``{"ok": true, ...}`` or ``{"ok": false, "error": <message>}``.  Ops:

``ping``
    Liveness + server identity (pid, protocol version, worker count).
``submit``
    ``{"jobs": [<SimJob.to_dict()>, ...], "wait": bool}``.  With
    ``wait`` (the default) the response carries the results, in
    submission order, once all jobs finish; without it, a ticket id to
    poll via ``results``.  Either way the response's ``summary`` says how
    the batch was satisfied (cache hits / coalesced / enqueued).
``results``
    ``{"ticket": <id>}`` — the batch's results if complete, else a
    progress report.
``status``
    Queue depth, per-worker state, lifetime counters, cache stats,
    journal location, open tickets.
``shutdown``
    Stop the daemon after acknowledging.

Crash safety is inherited from PR 3's journal machinery: every executed
job is appended (``fsync`` per record) to the service journal, and a
restarted daemon replays it into the cache, so completed work survives
daemon restarts as well as worker deaths (the queue requeues those).

See docs/architecture.md for the full data-flow picture.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import sys
from pathlib import Path

from repro.engine.cache import ResultCache, default_cache_dir
from repro.engine.checkpoint import CampaignJournal, JournalHeader
from repro.engine.executors import resolve_jobs
from repro.engine.job import SimJob
from repro.engine.queue import JobFailed, JobQueue, WorkerPool

#: Environment variable naming the default service socket path.
SOCKET_ENV = "REPRO_SERVICE_SOCKET"

#: Fallback socket path when neither ``--socket`` nor the env var is set.
DEFAULT_SOCKET = "repro-service.sock"

#: Wire protocol version, echoed by ``ping`` and checked by clients.
PROTOCOL_VERSION = 1

#: Maximum request/response line length (a 20-job grid is ~20 KB).
MAX_LINE = 64 * 1024 * 1024

#: Most tickets a daemon remembers; beyond this, the oldest *completed*
#: tickets are forgotten first (a never-polled ``--no-wait`` submission
#: must not grow daemon memory forever).
MAX_TICKETS = 1024

#: Header binding a service journal.  Unlike a campaign journal, the
#: service's job set is open-ended, so the binding key is a constant: any
#: service journal can resume any service (entries are still keyed by job
#: content key, so replay is exact).
SERVICE_JOURNAL_CAMPAIGN = "__service__"
SERVICE_JOURNAL_KEY = "service-v1"


def default_socket_path(explicit: str | os.PathLike | None = None) -> Path:
    """Resolve the service socket path (flag, else env, else cwd default)."""
    if explicit:
        return Path(explicit)
    raw = os.environ.get(SOCKET_ENV, "").strip()
    return Path(raw) if raw else Path(DEFAULT_SOCKET)


class SimService:
    """A running daemon: socket server + job queue + cache + journal."""

    def __init__(
        self,
        socket_path: str | os.PathLike | None = None,
        *,
        workers: int | None = None,
        cache: ResultCache | None = None,
        journal_path: str | os.PathLike | None = None,
    ):
        self.socket_path = default_socket_path(socket_path)
        self.workers = resolve_jobs(workers)
        self.cache = cache if cache is not None else ResultCache(default_cache_dir())
        self.journal_path = Path(journal_path) if journal_path else None
        self.journal: CampaignJournal | None = None
        self.replayed = 0
        self.queue: JobQueue | None = None
        self._server: asyncio.AbstractServer | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._stop_event: asyncio.Event | None = None
        self._tickets: dict[int, dict] = {}
        self._next_ticket = 0

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Open the journal, start the queue, bind the socket."""
        self._stop_event = asyncio.Event()
        if self.journal_path is not None:
            self.journal = CampaignJournal(self.journal_path)
            self.journal.open(JournalHeader(
                campaign=SERVICE_JOURNAL_CAMPAIGN,
                key=SERVICE_JOURNAL_KEY,
                total=0,
            ))
            # Replay completed work into the cache: a restarted daemon
            # answers everything it ever finished without re-simulating.
            for key, result in self.journal.entries.items():
                self.cache.seed(key, result)
                self.replayed += 1
        self.queue = JobQueue(WorkerPool(self.workers), cache=self.cache,
                              journal=self.journal)
        await self.queue.start()
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        if self.socket_path.exists():
            # Refuse to hijack a live daemon; only a *stale* socket (no
            # listener answering ping) is cleaned up and bound over.
            from repro.engine.client import ServiceError, service_running

            if service_running(self.socket_path):
                await self._teardown_queue_and_journal()
                raise ServiceError(
                    f"another repro service is already listening on "
                    f"{self.socket_path}; stop it first or pick a "
                    "different --socket"
                )
            self.socket_path.unlink()
        self._server = await asyncio.start_unix_server(
            self._handle, path=str(self.socket_path), limit=MAX_LINE,
        )

    async def stop(self) -> None:
        """Close the socket, stop the queue, close the journal."""
        if self._server is not None:
            self._server.close()
            # Cancel open client connections before wait_closed(): from
            # Python 3.12.1 wait_closed blocks until every handler ends,
            # and an idle client holding its connection would otherwise
            # hang the shutdown forever.
            for task in list(self._conn_tasks):
                task.cancel()
            if self._conn_tasks:
                await asyncio.gather(*self._conn_tasks,
                                     return_exceptions=True)
            await self._server.wait_closed()
            self._server = None
        await self._teardown_queue_and_journal()
        try:
            self.socket_path.unlink()
        except OSError:
            pass

    async def _teardown_queue_and_journal(self) -> None:
        if self.queue is not None:
            await self.queue.stop()
            self.queue = None
        if self.journal is not None:
            self.journal.close()
            self.journal = None

    def request_shutdown(self) -> None:
        """Ask the serve loop to exit (safe from signal handlers)."""
        if self._stop_event is not None:
            self._stop_event.set()

    async def serve_until_shutdown(self, on_ready=None) -> None:
        """Run until :meth:`request_shutdown` (the ``shutdown`` op or a
        signal) fires, then tear everything down.

        *on_ready*, if given, is called with the service once the socket
        is bound (e.g. to print the daemon's ready line).
        """
        await self.start()
        if on_ready is not None:
            on_ready(self)
        try:
            await self._stop_event.wait()
        finally:
            await self.stop()

    # -- connection handling --------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line)
                    if not isinstance(request, dict):
                        raise ValueError("request is not a JSON object")
                except ValueError as exc:
                    response = {"ok": False, "error": f"bad request: {exc}"}
                else:
                    response = await self._dispatch(request)
                writer.write((json.dumps(response, sort_keys=True)
                              + "\n").encode())
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Daemon shutting down mid-connection: end the handler task
            # cleanly so loop teardown doesn't log spurious tracebacks.
            pass
        finally:
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.CancelledError):
                pass

    async def _dispatch(self, request: dict) -> dict:
        op = request.get("op")
        handler = getattr(self, f"_op_{op}", None) if isinstance(op, str) \
            else None
        if handler is None or (isinstance(op, str) and op.startswith("_")):
            return {"ok": False, "error": f"unknown op {op!r}"}
        try:
            return await handler(request)
        except Exception as exc:  # noqa: BLE001 - protocol boundary
            return {"ok": False,
                    "error": f"{type(exc).__name__}: {exc}"}

    # -- ops -------------------------------------------------------------

    async def _op_ping(self, request: dict) -> dict:
        return {
            "ok": True,
            "server": {
                "pid": os.getpid(),
                "protocol": PROTOCOL_VERSION,
                "workers": self.workers,
                "socket": str(self.socket_path),
            },
        }

    async def _op_status(self, request: dict) -> dict:
        tickets = {
            str(ticket_id): {
                "jobs": len(record["futures"]),
                "done": sum(1 for f in record["futures"] if f.done()),
            }
            for ticket_id, record in self._tickets.items()
        }
        return {
            "ok": True,
            "queue": self.queue.describe(),
            "cache": self.cache.stats(),
            "journal": {
                "path": str(self.journal_path) if self.journal_path else None,
                "entries": self.journal.done if self.journal else 0,
                "replayed": self.replayed,
            },
            "tickets": tickets,
        }

    async def _op_submit(self, request: dict) -> dict:
        raw_jobs = request.get("jobs")
        if not isinstance(raw_jobs, list) or not raw_jobs:
            return {"ok": False, "error": "submit needs a non-empty 'jobs' list"}
        try:
            jobs = [SimJob.from_dict(raw) for raw in raw_jobs]
        except (TypeError, ValueError) as exc:
            return {"ok": False, "error": f"bad job spec: {exc}"}
        futures, summary = self.queue.submit(jobs)
        ticket_id = self._remember_ticket(futures)
        if not request.get("wait", True):
            return {"ok": True, "ticket": ticket_id, "summary": summary}
        results = await self._gather(futures)
        self._tickets.pop(ticket_id, None)
        if isinstance(results, dict):  # error response
            return results
        return {"ok": True, "ticket": ticket_id, "summary": summary,
                "results": results}

    async def _op_results(self, request: dict) -> dict:
        ticket_id = request.get("ticket")
        record = self._tickets.get(ticket_id) if isinstance(ticket_id, int) \
            else None
        if record is None:
            return {"ok": False, "error": f"unknown ticket {ticket_id!r}"}
        futures = record["futures"]
        done = sum(1 for f in futures if f.done())
        if done < len(futures):
            return {"ok": True, "ticket": ticket_id, "pending": True,
                    "done": done, "total": len(futures)}
        # The ticket stays fetchable after completion (re-polls and
        # retries are cheap and idempotent); the bounded ticket table
        # evicts it once it is old enough (:meth:`_remember_ticket`).
        results = await self._gather(futures)
        if isinstance(results, dict):
            return results
        return {"ok": True, "ticket": ticket_id, "pending": False,
                "results": results}

    async def _op_shutdown(self, request: dict) -> dict:
        self.request_shutdown()
        return {"ok": True, "stopping": True}

    def _remember_ticket(self, futures: list[asyncio.Future]) -> int:
        """Record a submission's futures; evict old completed tickets.

        Eviction only considers fully-done tickets (oldest first), so an
        in-flight ``--no-wait`` submission is never forgotten while its
        jobs are still running.
        """
        ticket_id = self._next_ticket
        self._next_ticket += 1
        self._tickets[ticket_id] = {"futures": futures}
        if len(self._tickets) > MAX_TICKETS:
            for old_id in sorted(self._tickets):
                if old_id == ticket_id:
                    continue
                if all(f.done() for f in self._tickets[old_id]["futures"]):
                    del self._tickets[old_id]
                    if len(self._tickets) <= MAX_TICKETS:
                        break
        return ticket_id

    async def _gather(self, futures: list[asyncio.Future]) -> list | dict:
        """Await a batch; job failures become one error response."""
        try:
            results = await asyncio.gather(*futures)
        except JobFailed as exc:
            return {"ok": False, "error": f"job failed: {exc}"}
        return [result.to_dict() for result in results]


def run_service(
    socket_path: str | os.PathLike | None = None,
    *,
    workers: int | None = None,
    cache: ResultCache | None = None,
    journal_path: str | os.PathLike | None = None,
    install_signal_handlers: bool = True,
    ready_message: bool = True,
) -> int:
    """Blocking entry point behind ``repro serve``.

    Runs the daemon until ``SIGINT``/``SIGTERM`` or a client ``shutdown``
    op.  Returns a process exit code.
    """
    service = SimService(socket_path, workers=workers, cache=cache,
                         journal_path=journal_path)

    def _print_ready(svc: SimService) -> None:
        where = svc.cache.directory or "memory-only"
        journal = svc.journal_path or "disabled"
        print(f"repro service: socket={svc.socket_path} "
              f"workers={svc.workers} cache={where} journal={journal}"
              + (f" (replayed {svc.replayed} journaled results)"
                 if svc.replayed else ""),
              file=sys.stderr, flush=True)

    async def _main() -> None:
        if install_signal_handlers:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(sig, service.request_shutdown)
                except (NotImplementedError, RuntimeError):
                    pass  # non-main thread or platform without support
        await service.serve_until_shutdown(
            on_ready=_print_ready if ready_message else None)

    from repro.engine.checkpoint import JournalError
    from repro.engine.client import ServiceError

    try:
        asyncio.run(_main())
    except (ServiceError, JournalError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        if isinstance(exc, JournalError):
            print("hint: --journal must point at a service journal file — "
                  "not a campaign journal, and not one already in use by "
                  "another daemon", file=sys.stderr)
        return 1
    return 0
