"""The simulation service daemon: one cache, one journal, many clients.

``repro serve`` runs a :class:`SimService`: a persistent process that
owns the result cache and a crash-safe completion journal, listens on a
Unix-domain socket, and feeds every client's jobs through one
:class:`~repro.engine.queue.JobQueue` on a persistent
:class:`~repro.engine.queue.WorkerPool`.  Because all clients share the
daemon's cache *and* its in-flight job set, overlapping submissions from
concurrent clients simulate each unique spec exactly once — the
"shared hot cache" serving story the ROADMAP asks for.

The same daemon also serves the cluster plane (:mod:`repro.engine.cluster`):
``--listen host:port`` binds a TCP socket instead of (not in addition to)
the Unix one, speaking the identical newline-JSON protocol, so N daemons
on N ports become shards behind a :class:`~repro.engine.cluster.ShardRouter`.
TCP mode adds two things Unix mode never needed:

* **auth** — a shared-secret token (``--token`` / ``$REPRO_SERVICE_TOKEN``).
  When configured, every request must carry ``"token"``; a mismatch is
  answered ``{"ok": false, "auth": true, ...}`` (constant-time compare),
  which clients raise as a non-retryable
  :class:`~repro.engine.client.ServiceAuthError`.
* **cache federation** — ``--peer`` addresses name sibling shards.  On a
  ``submit`` whose keys miss the local cache, the daemon first asks its
  peers (the ``lookup`` op: key in, cached result out, deliberately
  accounting-neutral and never recursive) and seeds any answers into its
  own cache, so work one shard finished is never re-simulated by another.
  Peer probes ride a short deadline and fail open: an unreachable peer
  costs a counter tick (``metrics``), never a stalled submit.

Protocol: newline-delimited JSON request/response over the socket.  One
request per line, one response line per request, connections may pipeline
many requests.  Requests are ``{"op": <name>, ...}``; responses are
``{"ok": true, ...}`` or ``{"ok": false, "error": <message>}``.  Ops:

``ping``
    Liveness + server identity (pid, protocol version, worker count).
``submit``
    ``{"jobs": [<SimJob.to_dict()>, ...], "wait": bool}``.  With
    ``wait`` (the default) the response carries the results, in
    submission order, once all jobs finish; without it, a ticket id to
    poll via ``results``.  Either way the response's ``summary`` says how
    the batch was satisfied (cache hits / coalesced / enqueued).
``results``
    ``{"ticket": <id>}`` — the batch's results if complete, else a
    progress report.
``status``
    Queue depth, per-worker state, lifetime counters, cache stats,
    journal location, open tickets.
``health``
    Cheap liveness/degradation snapshot: worker aliveness, queue depth
    vs. bound, timeout/rejection counters and the degraded-mode flags
    (journal, cache or shm failures the daemon absorbed).
``chaos``
    The active fault-injection plan (:mod:`repro.engine.faults`) — site
    hit counts and fired rules.  Only served when the daemon was started
    with chaos enabled (``repro serve --chaos``); refused otherwise.
``metrics``
    The flat ops surface the cluster plane scrapes: queue depth and
    in-flight jobs, cache hit/miss/store counters, peer-federation
    counters, fast-path fallback counters and fault-plane state — one
    JSON object per shard, aggregated by ``repro cluster status``.
``lookup``
    ``{"keys": [<content key>, ...]}`` — answer from the local cache
    only (:meth:`~repro.engine.cache.ResultCache.peek`; no queueing, no
    peer recursion).  This is the server half of cache federation.
``shutdown``
    Stop the daemon after acknowledging.

Overload: with a queue bound configured (``--queue-bound`` /
``$REPRO_QUEUE_BOUND``), a ``submit`` the queue cannot admit is answered
``{"ok": false, "overloaded": true, ...}`` — an explicit backpressure
signal the client turns into :class:`~repro.engine.client.ServiceOverloaded`
and retries with backoff, instead of the daemon either growing without
bound or silently hanging the caller.

Crash safety is inherited from PR 3's journal machinery: every executed
job is appended (``fsync`` per record) to the service journal, and a
restarted daemon replays it into the cache, so completed work survives
daemon restarts as well as worker deaths (the queue requeues those).
Two daemons can never share a journal or a socket: the journal file is
``flock``-ed by its writer, and the daemon holds a lockfile next to its
socket, so the stale-socket cleanup path cannot race a live daemon.

See docs/architecture.md for the full data-flow picture.
"""

from __future__ import annotations

import asyncio
import hmac
import json
import os
import signal
import sys
import time
from pathlib import Path

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro.engine import faults
from repro.engine.cache import ResultCache, default_cache_dir
from repro.engine.checkpoint import CampaignJournal, JournalHeader
from repro.engine.executors import resolve_jobs
from repro.engine.job import SimJob
from repro.engine.queue import (
    JobFailed,
    JobQueue,
    QueueOverloaded,
    WorkerPool,
)
from repro.pipeline.result import SimResult

#: Environment variable naming the default service socket path.
SOCKET_ENV = "REPRO_SERVICE_SOCKET"

#: Environment variable holding the shared-secret auth token (TCP mode).
TOKEN_ENV = "REPRO_SERVICE_TOKEN"

#: Fallback socket path when neither ``--socket`` nor the env var is set.
DEFAULT_SOCKET = "repro-service.sock"

#: Wire protocol version, echoed by ``ping`` and checked by clients.
#: v2 added TCP transport, token auth and the ``metrics``/``lookup`` ops.
PROTOCOL_VERSION = 2

#: Maximum request/response line length (a 20-job grid is ~20 KB).
MAX_LINE = 64 * 1024 * 1024

#: Most jobs one ``submit`` may carry — an admission bound on request
#: *width* to complement the queue-depth bound on request *volume*.
MAX_SUBMIT_JOBS = 4096

#: Deadline for one peer-cache probe.  Short on purpose: federation is
#: an optimisation, and a dead peer must cost milliseconds, not stall
#: every submit behind a 300-second client-style timeout.
PEER_LOOKUP_TIMEOUT = 2.0

#: Most tickets a daemon remembers; beyond this, the oldest *completed*
#: tickets are forgotten first (a never-polled ``--no-wait`` submission
#: must not grow daemon memory forever).
MAX_TICKETS = 1024

#: Header binding a service journal.  Unlike a campaign journal, the
#: service's job set is open-ended, so the binding key is a constant: any
#: service journal can resume any service (entries are still keyed by job
#: content key, so replay is exact).
SERVICE_JOURNAL_CAMPAIGN = "__service__"
SERVICE_JOURNAL_KEY = "service-v1"


def default_socket_path(explicit: str | os.PathLike | None = None) -> Path:
    """Resolve the service socket path (flag, else env, else cwd default)."""
    if explicit:
        return Path(explicit)
    raw = os.environ.get(SOCKET_ENV, "").strip()
    return Path(raw) if raw else Path(DEFAULT_SOCKET)


def resolve_service_token(explicit: str | None = None) -> str | None:
    """Resolve the shared-secret token (flag, else env, else none).

    ``None`` disables auth entirely — the Unix-socket default, where
    filesystem permissions already gate access.  TCP deployments should
    always set one.
    """
    if explicit:
        return explicit
    raw = os.environ.get(TOKEN_ENV, "").strip()
    return raw or None


def parse_address(address: str | os.PathLike) -> tuple:
    """Split a service address into ``("tcp", host, port)`` or
    ``("unix", path)``.

    TCP addresses must be explicit — ``tcp://host:port`` — because a
    bare string containing a colon is a perfectly legal Unix socket
    path; guessing would mis-route someone's ``./run:1/svc.sock``.
    """
    text = str(address)
    if text.startswith("tcp://"):
        host, sep, port = text[len("tcp://"):].rpartition(":")
        if not sep or not host or not port.isdigit():
            raise ValueError(
                f"bad service address {text!r} (want tcp://host:port)")
        return ("tcp", host, int(port))
    return ("unix", text)


def parse_listen(listen: str) -> tuple[str, int]:
    """Parse a ``--listen`` value (``host:port``, ``tcp://`` optional).

    Port ``0`` is valid and means "kernel picks": the daemon's ready
    line and ``ping`` report the actual bound port, which is how the
    test harness runs many shards without port coordination.
    """
    text = str(listen)
    if text.startswith("tcp://"):
        text = text[len("tcp://"):]
    host, sep, port = text.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(f"bad --listen {listen!r} (want host:port)")
    return (host or "127.0.0.1", int(port))


class SimService:
    """A running daemon: socket server + job queue + cache + journal."""

    def __init__(
        self,
        socket_path: str | os.PathLike | None = None,
        *,
        workers: int | None = None,
        cache: ResultCache | None = None,
        journal_path: str | os.PathLike | None = None,
        max_depth: int | None = None,
        job_timeout: float | None = None,
        chaos: bool = False,
        listen: str | None = None,
        token: str | None = None,
        peers: list[str] | None = None,
    ):
        self.socket_path = default_socket_path(socket_path)
        #: TCP bind (host, port) when serving a cluster shard; ``None``
        #: keeps the Unix-socket transport.  The two are exclusive — a
        #: shard *is* a plain daemon on a different transport.
        self.listen = parse_listen(listen) if listen else None
        #: Actual bound address (``tcp://host:port``) once started;
        #: meaningful with ``--listen host:0``.
        self.listen_address: str | None = None
        self.token = resolve_service_token(token)
        #: Sibling shard addresses consulted by the cache-federation
        #: read-through (each ``tcp://host:port`` or a Unix socket path).
        self.peers = [str(peer) for peer in (peers or [])]
        self.peer_hits = 0
        self.peer_misses = 0
        self.peer_failures = 0
        self.workers = resolve_jobs(workers)
        self.cache = cache if cache is not None else ResultCache(default_cache_dir())
        self.journal_path = Path(journal_path) if journal_path else None
        self.journal: CampaignJournal | None = None
        self.replayed = 0
        self.max_depth = max_depth
        self.job_timeout = job_timeout
        #: Whether the ``chaos`` op is served (``repro serve --chaos``).
        self.chaos = bool(chaos)
        self.queue: JobQueue | None = None
        self._server: asyncio.AbstractServer | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._stop_event: asyncio.Event | None = None
        self._tickets: dict[int, dict] = {}
        self._next_ticket = 0
        self._lock_fh = None
        self._started_at: float | None = None

    # -- lifecycle -------------------------------------------------------

    @property
    def lock_path(self) -> Path:
        """The daemon lockfile guarding this socket path."""
        return self.socket_path.with_name(self.socket_path.name + ".lock")

    def _acquire_lock(self) -> None:
        """Take the per-socket daemon lock (advisory flock, non-blocking).

        This is what makes the stale-socket cleanup below race-free: two
        daemons starting simultaneously against one path both see a dead
        socket, but only the lock holder may unlink and rebind.  The lock
        lives next to the socket so it travels with a ``--socket``
        override, and it is released (not leaked) by :meth:`stop` —
        though even a ``SIGKILL``-ed daemon releases a flock with its fd.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            return
        from repro.engine.client import ServiceError

        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        fh = open(self.lock_path, "a+")
        try:
            fcntl.flock(fh.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            fh.close()
            raise ServiceError(
                f"another repro service holds the lock for "
                f"{self.socket_path} (lockfile {self.lock_path}); stop it "
                "first or pick a different --socket"
            ) from None
        self._lock_fh = fh

    def _release_lock(self) -> None:
        if self._lock_fh is not None:
            try:
                self._lock_fh.close()
            except OSError:
                pass
            self._lock_fh = None
            try:
                self.lock_path.unlink()
            except OSError:
                pass

    async def start(self) -> None:
        """Open the journal, start the queue, bind the socket."""
        self._stop_event = asyncio.Event()
        self._started_at = time.monotonic()
        if self.listen is None:
            # The flock + stale-socket dance only exists because Unix
            # socket files outlive their listeners; a TCP bind is
            # exclusive by itself (EADDRINUSE), so shards skip it.
            self._acquire_lock()
        try:
            if self.journal_path is not None:
                self.journal = CampaignJournal(self.journal_path)
                self.journal.open(JournalHeader(
                    campaign=SERVICE_JOURNAL_CAMPAIGN,
                    key=SERVICE_JOURNAL_KEY,
                    total=0,
                ))
                # Replay completed work into the cache: a restarted daemon
                # answers everything it ever finished without re-simulating.
                for key, result in self.journal.entries.items():
                    self.cache.seed(key, result)
                    self.replayed += 1
            self.queue = JobQueue(WorkerPool(self.workers), cache=self.cache,
                                  journal=self.journal,
                                  max_depth=self.max_depth,
                                  job_timeout=self.job_timeout)
            await self.queue.start()
            if self.listen is not None:
                host, port = self.listen
                self._server = await asyncio.start_server(
                    self._handle, host=host, port=port, limit=MAX_LINE,
                )
                bound = self._server.sockets[0].getsockname()
                self.listen_address = f"tcp://{bound[0]}:{bound[1]}"
            else:
                self.socket_path.parent.mkdir(parents=True, exist_ok=True)
                if self.socket_path.exists():
                    # Refuse to hijack a live daemon; only a *stale* socket
                    # (no listener answering ping) is cleaned up and bound
                    # over.  The lockfile taken above makes this race-free.
                    from repro.engine.client import (
                        ServiceError,
                        service_running,
                    )

                    if service_running(self.socket_path):
                        raise ServiceError(
                            f"another repro service is already listening on "
                            f"{self.socket_path}; stop it first or pick a "
                            "different --socket"
                        )
                    self.socket_path.unlink()
                self._server = await asyncio.start_unix_server(
                    self._handle, path=str(self.socket_path), limit=MAX_LINE,
                )
        except BaseException:
            await self._teardown_queue_and_journal()
            self._release_lock()
            raise

    async def stop(self) -> None:
        """Close the socket, stop the queue, close the journal."""
        if self._server is not None:
            self._server.close()
            # Cancel open client connections before wait_closed(): from
            # Python 3.12.1 wait_closed blocks until every handler ends,
            # and an idle client holding its connection would otherwise
            # hang the shutdown forever.
            for task in list(self._conn_tasks):
                task.cancel()
            if self._conn_tasks:
                await asyncio.gather(*self._conn_tasks,
                                     return_exceptions=True)
            await self._server.wait_closed()
            self._server = None
        await self._teardown_queue_and_journal()
        if self.listen is None:
            try:
                self.socket_path.unlink()
            except OSError:
                pass
            self._release_lock()

    async def _teardown_queue_and_journal(self) -> None:
        if self.queue is not None:
            await self.queue.stop()
            self.queue = None
        if self.journal is not None:
            self.journal.close()
            self.journal = None

    def request_shutdown(self) -> None:
        """Ask the serve loop to exit (safe from signal handlers)."""
        if self._stop_event is not None:
            self._stop_event.set()

    async def serve_until_shutdown(self, on_ready=None) -> None:
        """Run until :meth:`request_shutdown` (the ``shutdown`` op or a
        signal) fires, then tear everything down.

        *on_ready*, if given, is called with the service once the socket
        is bound (e.g. to print the daemon's ready line).
        """
        await self.start()
        if on_ready is not None:
            on_ready(self)
        try:
            await self._stop_event.wait()
        finally:
            await self.stop()

    # -- connection handling --------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            while True:
                try:
                    line = await reader.readline()
                except ValueError:
                    # A request line past MAX_LINE: answer with a typed
                    # refusal and hang up.  The buffered tail of the
                    # oversized line cannot be resynchronised, so the
                    # connection is unusable afterwards — but the client
                    # gets a reason instead of a silent reset.
                    refusal = {"ok": False,
                               "error": f"request line exceeds {MAX_LINE} "
                                        "bytes"}
                    writer.write(
                        (json.dumps(refusal, sort_keys=True) + "\n").encode())
                    await writer.drain()
                    break
                if not line:
                    break
                try:
                    request = json.loads(line)
                    if not isinstance(request, dict):
                        raise ValueError("request is not a JSON object")
                except ValueError as exc:
                    response = {"ok": False, "error": f"bad request: {exc}"}
                else:
                    response = await self._dispatch(request)
                data = (json.dumps(response, sort_keys=True) + "\n").encode()
                # Chaos: the service.send site models every way a response
                # can fail to arrive — dropped before any byte is written,
                # cut after a partial write, or the connection severed —
                # which is exactly what the client's timeout/retry path
                # must survive (resubmission is idempotent by content key).
                rule = faults.fire("service.send")
                if rule is not None and rule.action == "stall":
                    await asyncio.sleep(rule.arg if rule.arg else 30.0)
                elif rule is not None:
                    if rule.action == "partial" and len(data) > 1:
                        writer.write(data[: len(data) // 2])
                        await writer.drain()
                    writer.transport.abort()
                    break
                writer.write(data)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError,
                asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Daemon shutting down mid-connection: end the handler task
            # cleanly so loop teardown doesn't log spurious tracebacks.
            pass
        finally:
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.CancelledError):
                pass

    async def _dispatch(self, request: dict) -> dict:
        if self.token is not None:
            supplied = request.get("token")
            if not isinstance(supplied, str) or \
                    not hmac.compare_digest(supplied, self.token):
                # "auth": true lets the client raise the non-retryable
                # ServiceAuthError — resending a bad token cannot help.
                # The constant-time compare keeps the shared secret from
                # leaking through response timing.
                return {"ok": False, "auth": True,
                        "error": "authentication failed: bad or missing "
                                 "token (set REPRO_SERVICE_TOKEN)"}
        op = request.get("op")
        handler = getattr(self, f"_op_{op}", None) if isinstance(op, str) \
            else None
        if handler is None or (isinstance(op, str) and op.startswith("_")):
            return {"ok": False, "error": f"unknown op {op!r}"}
        try:
            return await handler(request)
        except Exception as exc:  # noqa: BLE001 - protocol boundary
            return {"ok": False,
                    "error": f"{type(exc).__name__}: {exc}"}

    # -- ops -------------------------------------------------------------

    def describe_address(self) -> str:
        """The daemon's serving address (TCP bind or Unix socket path)."""
        if self.listen_address is not None:
            return self.listen_address
        if self.listen is not None:  # parsed but not yet bound
            return f"tcp://{self.listen[0]}:{self.listen[1]}"
        return str(self.socket_path)

    async def _op_ping(self, request: dict) -> dict:
        return {
            "ok": True,
            "server": {
                "pid": os.getpid(),
                "protocol": PROTOCOL_VERSION,
                "workers": self.workers,
                "socket": str(self.socket_path),
                "transport": "tcp" if self.listen is not None else "unix",
                "address": self.describe_address(),
                "auth": self.token is not None,
                "peers": len(self.peers),
            },
        }

    async def _op_status(self, request: dict) -> dict:
        tickets = {
            str(ticket_id): {
                "jobs": len(record["futures"]),
                "done": sum(1 for f in record["futures"] if f.done()),
            }
            for ticket_id, record in self._tickets.items()
        }
        return {
            "ok": True,
            "queue": self.queue.describe(),
            "cache": self.cache.stats(),
            "journal": {
                "path": str(self.journal_path) if self.journal_path else None,
                "entries": self.journal.done if self.journal else 0,
                "replayed": self.replayed,
            },
            "tickets": tickets,
        }

    async def _op_health(self, request: dict) -> dict:
        health = self.queue.health()
        health["pid"] = os.getpid()
        health["chaos"] = self.chaos and faults.active_plan() is not None
        return {"ok": True, "health": health}

    async def _op_chaos(self, request: dict) -> dict:
        if not self.chaos:
            return {"ok": False,
                    "error": "chaos introspection is disabled; start the "
                             "daemon with `repro serve --chaos`"}
        plan = faults.active_plan()
        return {"ok": True,
                "plan": plan.describe() if plan is not None else None}

    async def _op_metrics(self, request: dict) -> dict:
        """The per-shard ops surface the cluster plane scrapes.

        One flat JSON object: identity, queue pressure (depth / pending /
        in-flight), cache effectiveness, peer-federation counters,
        fast-path fallback counters and fault-plane state.  Everything a
        ``repro cluster status`` row needs, cheap enough to poll.
        """
        from repro.pipeline.fastsim import fallback_stats

        queue = self.queue.describe()
        workers = queue["workers"]
        cache = self.cache.stats()
        plan = faults.active_plan()
        uptime = (time.monotonic() - self._started_at
                  if self._started_at is not None else 0.0)
        return {
            "ok": True,
            "metrics": {
                "shard": {
                    "pid": os.getpid(),
                    "address": self.describe_address(),
                    "transport": "tcp" if self.listen is not None
                                 else "unix",
                    "workers": self.workers,
                    "uptime_s": round(uptime, 3),
                },
                "queue": {
                    "depth": queue["depth"],
                    "pending": queue["pending"],
                    "in_flight": sum(1 for w in workers
                                     if w["task"] is not None),
                    "workers_alive": sum(1 for w in workers if w["alive"]),
                    "max_depth": queue["max_depth"],
                    "restarts": queue["restarts"],
                    "stats": queue["stats"],
                },
                "cache": {
                    "hits": cache["memory_hits"] + cache["disk_hits"],
                    "misses": cache["misses"],
                    "stores": cache["stores"],
                    "memory_entries": cache["memory_entries"],
                    "disk_entries": cache["disk_entries"],
                    "write_failures": cache["write_failures"],
                },
                "peers": {
                    "configured": len(self.peers),
                    "hits": self.peer_hits,
                    "misses": self.peer_misses,
                    "failures": self.peer_failures,
                },
                "fallbacks": fallback_stats(),
                "faults": {
                    "active": plan is not None,
                    "fired": (sum(plan.fired.values())
                              if plan is not None else 0),
                },
                "tickets": len(self._tickets),
            },
        }

    async def _op_lookup(self, request: dict) -> dict:
        """Answer peer cache probes from the local cache only.

        Strictly local (:meth:`ResultCache.peek`): no queueing, no
        accounting, and — critically — no further peer fan-out, so a
        federation probe can never recurse around the ring.
        """
        keys = request.get("keys")
        if not isinstance(keys, list) or \
                not all(isinstance(k, str) for k in keys):
            return {"ok": False,
                    "error": "lookup needs a 'keys' list of content keys"}
        found = {}
        for key in keys:
            result = self.cache.peek(key)
            if result is not None:
                found[key] = result.to_dict()
        return {"ok": True, "found": found}

    # -- cache federation -------------------------------------------------

    async def _peer_request(self, address: str, payload: dict) -> dict:
        """One short-deadline protocol round against a sibling shard."""
        kind, *where = parse_address(address)
        if kind == "tcp":
            opening = asyncio.open_connection(where[0], where[1],
                                              limit=MAX_LINE)
        else:
            opening = asyncio.open_unix_connection(where[0], limit=MAX_LINE)
        reader, writer = await asyncio.wait_for(opening, PEER_LOOKUP_TIMEOUT)
        try:
            if self.token is not None:
                payload = dict(payload, token=self.token)
            writer.write((json.dumps(payload) + "\n").encode())
            await asyncio.wait_for(writer.drain(), PEER_LOOKUP_TIMEOUT)
            line = await asyncio.wait_for(reader.readline(),
                                          PEER_LOOKUP_TIMEOUT)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass
        if not line.endswith(b"\n"):
            raise ConnectionResetError("peer closed mid-response")
        response = json.loads(line)
        if not response.get("ok"):
            raise RuntimeError(response.get("error", "peer refused lookup"))
        return response

    async def _peer_fill(self, jobs: list[SimJob]) -> int:
        """Seed the local cache with peers' results for *jobs* (read-through).

        Asks every configured peer (concurrently) for the batch's
        locally-missing content keys and seeds whatever comes back.
        Fails open on every axis — a dead, slow or mid-handshake peer
        only ticks :attr:`peer_failures` — because federation is a
        cross-shard optimisation, never a correctness dependency.
        Returns the number of keys seeded from peers.
        """
        if not self.peers:
            return 0
        missing = []
        for job in jobs:
            key = job.content_key()
            if key not in missing and self.cache.peek(key) is None:
                missing.append(key)
        if not missing:
            return 0

        async def probe(peer: str) -> dict:
            rule = faults.fire("peer.lookup")
            if rule is not None and rule.action == "fail":
                raise ConnectionRefusedError(
                    f"injected peer.lookup failure for {peer}")
            if rule is not None and rule.action == "stall":
                # Out-stall the probe deadline: the submit path must
                # treat a hung peer exactly like a dead one.
                await asyncio.sleep(rule.arg if rule.arg
                                    else PEER_LOOKUP_TIMEOUT * 5)
            response = await self._peer_request(
                peer, {"op": "lookup", "keys": missing})
            return response.get("found", {})

        outcomes = await asyncio.gather(
            *(asyncio.wait_for(probe(peer), PEER_LOOKUP_TIMEOUT * 2)
              for peer in self.peers),
            return_exceptions=True)
        seeded: set[str] = set()
        for outcome in outcomes:
            if isinstance(outcome, BaseException):
                self.peer_failures += 1
                continue
            for key, raw in outcome.items():
                if key not in missing or not isinstance(raw, dict):
                    continue
                try:
                    result = SimResult.from_dict(raw)
                except (TypeError, ValueError, KeyError):
                    continue
                self.cache.seed(key, result)
                seeded.add(key)
        self.peer_hits += len(seeded)
        self.peer_misses += len(missing) - len(seeded)
        return len(seeded)

    async def _op_submit(self, request: dict) -> dict:
        raw_jobs = request.get("jobs")
        if not isinstance(raw_jobs, list) or not raw_jobs:
            return {"ok": False, "error": "submit needs a non-empty 'jobs' list"}
        if len(raw_jobs) > MAX_SUBMIT_JOBS:
            return {"ok": False,
                    "error": f"submit carries {len(raw_jobs)} jobs; the "
                             f"per-request bound is {MAX_SUBMIT_JOBS} — "
                             "split the batch"}
        try:
            jobs = [SimJob.from_dict(raw) for raw in raw_jobs]
        except (TypeError, ValueError) as exc:
            return {"ok": False, "error": f"bad job spec: {exc}"}
        peer_hits = await self._peer_fill(jobs)
        try:
            futures, summary = self.queue.submit(jobs)
        except QueueOverloaded as exc:
            # Explicit backpressure, distinguishable from a hard error:
            # the client backs off and resubmits the identical batch
            # (idempotent — content keys dedupe server-side).
            return {"ok": False, "overloaded": True,
                    "depth": self.queue.depth,
                    "max_depth": self.queue.max_depth,
                    "error": str(exc)}
        summary["peer_hits"] = peer_hits
        ticket_id = self._remember_ticket(futures)
        if not request.get("wait", True):
            return {"ok": True, "ticket": ticket_id, "summary": summary}
        results = await self._gather(futures)
        self._tickets.pop(ticket_id, None)
        if isinstance(results, dict):  # error response
            return results
        return {"ok": True, "ticket": ticket_id, "summary": summary,
                "results": results}

    async def _op_results(self, request: dict) -> dict:
        ticket_id = request.get("ticket")
        record = self._tickets.get(ticket_id) if isinstance(ticket_id, int) \
            else None
        if record is None:
            return {"ok": False, "error": f"unknown ticket {ticket_id!r}"}
        futures = record["futures"]
        done = sum(1 for f in futures if f.done())
        if done < len(futures):
            return {"ok": True, "ticket": ticket_id, "pending": True,
                    "done": done, "total": len(futures)}
        # The ticket stays fetchable after completion (re-polls and
        # retries are cheap and idempotent); the bounded ticket table
        # evicts it once it is old enough (:meth:`_remember_ticket`).
        results = await self._gather(futures)
        if isinstance(results, dict):
            return results
        return {"ok": True, "ticket": ticket_id, "pending": False,
                "results": results}

    async def _op_shutdown(self, request: dict) -> dict:
        self.request_shutdown()
        return {"ok": True, "stopping": True}

    def _remember_ticket(self, futures: list[asyncio.Future]) -> int:
        """Record a submission's futures; evict old completed tickets.

        Eviction only considers fully-done tickets (oldest first), so an
        in-flight ``--no-wait`` submission is never forgotten while its
        jobs are still running.
        """
        ticket_id = self._next_ticket
        self._next_ticket += 1
        self._tickets[ticket_id] = {"futures": futures}
        if len(self._tickets) > MAX_TICKETS:
            for old_id in sorted(self._tickets):
                if old_id == ticket_id:
                    continue
                if all(f.done() for f in self._tickets[old_id]["futures"]):
                    del self._tickets[old_id]
                    if len(self._tickets) <= MAX_TICKETS:
                        break
        return ticket_id

    async def _gather(self, futures: list[asyncio.Future]) -> list | dict:
        """Await a batch; job failures become one error response."""
        try:
            results = await asyncio.gather(*futures)
        except JobFailed as exc:
            return {"ok": False, "error": f"job failed: {exc}"}
        return [result.to_dict() for result in results]


def run_service(
    socket_path: str | os.PathLike | None = None,
    *,
    workers: int | None = None,
    cache: ResultCache | None = None,
    journal_path: str | os.PathLike | None = None,
    max_depth: int | None = None,
    job_timeout: float | None = None,
    chaos: bool = False,
    listen: str | None = None,
    token: str | None = None,
    peers: list[str] | None = None,
    install_signal_handlers: bool = True,
    ready_message: bool = True,
) -> int:
    """Blocking entry point behind ``repro serve`` / ``repro cluster serve``.

    Runs the daemon until ``SIGINT``/``SIGTERM`` or a client ``shutdown``
    op.  Returns a process exit code.  With *chaos*, any fault plan in
    ``$REPRO_FAULTS`` is surfaced via the ``chaos`` op and exported to
    spawned workers; unset plans still activate from the environment
    either way (the chaos *flag* only gates introspection, not
    injection — an un-flagged daemon under ``REPRO_FAULTS`` is exactly
    the "operator forgot" scenario the suite tests).  *listen* switches
    the transport to TCP (``host:port``; port 0 lets the kernel pick and
    the ready line reports the bound address), *token* arms shared-secret
    auth, and *peers* names sibling shards for cache federation.
    """
    if chaos:
        # Re-export whatever plan is active so spawn-start workers (which
        # re-import everything) see the same spec and seed.
        faults.install_plan(faults.active_plan(), export_env=True)
    service = SimService(socket_path, workers=workers, cache=cache,
                         journal_path=journal_path, max_depth=max_depth,
                         job_timeout=job_timeout, chaos=chaos,
                         listen=listen, token=token, peers=peers)

    def _print_ready(svc: SimService) -> None:
        where = svc.cache.directory or "memory-only"
        journal = svc.journal_path or "disabled"
        if svc.listen is not None:
            # Machine-readable on purpose: the cluster harness parses
            # "listen=tcp://host:port" to learn a :0 daemon's real port.
            bind = (f"listen={svc.listen_address} auth="
                    f"{'on' if svc.token else 'off'} peers={len(svc.peers)}")
        else:
            bind = f"socket={svc.socket_path}"
        print(f"repro service: {bind} "
              f"workers={svc.workers} cache={where} journal={journal}"
              + (f" (replayed {svc.replayed} journaled results)"
                 if svc.replayed else ""),
              file=sys.stderr, flush=True)

    async def _main() -> None:
        if install_signal_handlers:
            loop = asyncio.get_running_loop()
            for sig in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(sig, service.request_shutdown)
                except (NotImplementedError, RuntimeError):
                    pass  # non-main thread or platform without support
        await service.serve_until_shutdown(
            on_ready=_print_ready if ready_message else None)

    from repro.engine.checkpoint import JournalError
    from repro.engine.client import ServiceError

    try:
        asyncio.run(_main())
    except (ServiceError, JournalError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        if isinstance(exc, JournalError):
            print("hint: --journal must point at a service journal file — "
                  "not a campaign journal, and not one already in use by "
                  "another daemon", file=sys.stderr)
        return 1
    return 0
