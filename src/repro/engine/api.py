"""The experiment engine: batch execution of job grids with caching.

Every driver (``runner``, ``figures``, ``reproduce``, the CLI, the
benchmark harness) funnels simulations through an :class:`Engine`, which
composes one executor with one result cache:

* duplicate jobs inside a batch run once (content-key deduplication);
* previously-seen jobs are answered from the cache (memory, then disk);
* only the remaining misses go to the executor, in submission order.

``default_engine()`` builds a process-wide engine from the environment
(``REPRO_JOBS``, ``REPRO_CACHE_DIR``); ``configure_default_engine`` lets
entry points (CLI ``--jobs``, ``reproduce --jobs``) override it.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.engine.cache import ResultCache, default_cache_dir
from repro.engine.executors import (
    PoolExecutor,
    SerialExecutor,
    make_executor,
)
from repro.engine.job import SimJob
from repro.pipeline.config import CoreConfig
from repro.pipeline.result import SimResult


class Engine:
    """One executor + one result cache; the unit every driver talks to."""

    def __init__(
        self,
        executor: SerialExecutor | PoolExecutor | None = None,
        cache: ResultCache | None = None,
    ):
        self.executor = executor if executor is not None else make_executor()
        self.cache = cache if cache is not None else ResultCache(default_cache_dir())

    def describe(self) -> str:
        where = self.cache.directory or "memory-only"
        return f"executor={self.executor.describe()} cache={where}"

    def run_jobs(self, jobs: Sequence[SimJob]) -> list[SimResult]:
        """Run a batch of jobs; returns results in submission order.

        Cache hits never reach the executor, and spec-identical jobs in
        one batch are simulated exactly once.
        """
        results: list[SimResult | None] = [None] * len(jobs)
        pending: dict[str, list[int]] = {}
        pending_jobs: list[SimJob] = []
        for i, job in enumerate(jobs):
            cached = self.cache.get(job)
            if cached is not None:
                results[i] = cached
                continue
            key = job.content_key()
            if key in pending:
                pending[key].append(i)
            else:
                pending[key] = [i]
                pending_jobs.append(job)
        if pending_jobs:
            computed = self.executor.run(pending_jobs)
            for job, result in zip(pending_jobs, computed):
                self.cache.put(job, result)
                for i in pending[job.content_key()]:
                    results[i] = result
        return results  # type: ignore[return-value]

    def run_job(self, job: SimJob) -> SimResult:
        return self.run_jobs([job])[0]

    def run_grid(
        self,
        predictors: Iterable[str],
        workloads: Iterable[str],
        *,
        n_uops: int,
        warmup: int,
        fpc: bool = True,
        recovery: str = "squash",
        entries: int = 8192,
        config: CoreConfig | None = None,
    ) -> dict[tuple[str, str], SimResult]:
        """Sweep predictors × workloads; returns ``(predictor, workload)``-keyed results."""
        preds = tuple(predictors)
        wls = tuple(workloads)
        jobs = [
            SimJob.make(w, p, fpc=fpc, recovery=recovery, entries=entries,
                        n_uops=n_uops, warmup=warmup, config=config)
            for p in preds
            for w in wls
        ]
        results = self.run_jobs(jobs)
        return {
            (p, w): results[pi * len(wls) + wi]
            for pi, p in enumerate(preds)
            for wi, w in enumerate(wls)
        }


# ---------------------------------------------------------------------------
# Process-wide default engine.
# ---------------------------------------------------------------------------

_DEFAULT_ENGINE: Engine | None = None


def default_engine() -> Engine:
    """The process-wide engine, built lazily from the environment."""
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = Engine()
    return _DEFAULT_ENGINE


def configure_default_engine(
    jobs: int | None = None,
    cache_dir: str | None = None,
) -> Engine:
    """Rebuild the default engine with explicit knobs.

    ``jobs=None`` / ``cache_dir=None`` fall back to ``REPRO_JOBS`` /
    ``REPRO_CACHE_DIR``; an empty ``cache_dir`` string forces a
    memory-only cache regardless of the environment.  Returns the new
    engine.
    """
    global _DEFAULT_ENGINE
    if cache_dir is None:
        directory = default_cache_dir()
    else:
        directory = cache_dir or None
    _DEFAULT_ENGINE = Engine(executor=make_executor(jobs),
                             cache=ResultCache(directory))
    return _DEFAULT_ENGINE


def set_default_engine(engine: Engine) -> Engine:
    """Install *engine* as the process-wide default and return it.

    For drivers that build a non-standard engine — e.g. the reproduce
    driver with ``--backend service``, whose batches must go to a daemon
    *and* whose figure renderers replay from the same engine's cache —
    so that every ``run_jobs(..., engine=None)`` call downstream shares
    it.
    """
    global _DEFAULT_ENGINE
    _DEFAULT_ENGINE = engine
    return engine


def reset_default_engine() -> None:
    """Drop the default engine (next use rebuilds from the environment)."""
    global _DEFAULT_ENGINE
    _DEFAULT_ENGINE = None


def run_jobs(jobs: Sequence[SimJob], engine: Engine | None = None) -> list[SimResult]:
    """Run a batch on *engine* (default: the process-wide engine)."""
    return (engine or default_engine()).run_jobs(jobs)


def run_job(job: SimJob, engine: Engine | None = None) -> SimResult:
    """Run one job on *engine* (default: the process-wide engine)."""
    return (engine or default_engine()).run_job(job)


def run_grid(
    predictors: Iterable[str],
    workloads: Iterable[str],
    *,
    n_uops: int,
    warmup: int,
    fpc: bool = True,
    recovery: str = "squash",
    entries: int = 8192,
    config: CoreConfig | None = None,
    engine: Engine | None = None,
) -> dict[tuple[str, str], SimResult]:
    """Sweep predictors × workloads on *engine* (default: process-wide)."""
    return (engine or default_engine()).run_grid(
        predictors, workloads, n_uops=n_uops, warmup=warmup, fpc=fpc,
        recovery=recovery, entries=entries, config=config,
    )
