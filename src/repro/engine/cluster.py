"""Shard the simulation service: consistent hashing, routing, failover.

One :class:`~repro.engine.service.SimService` daemon scales to one
machine's cores.  The cluster plane scales past that with the dumbest
topology that preserves the engine's invariants: N independent daemons
("shards"), each listening on TCP (``repro cluster serve``), and a
client-side :class:`ShardRouter` that deterministically maps every job
to a shard by consistent-hashing its **content key** — the same digest
that already names the job in the cache, the journal and the coalescing
table.  Routing by content key means:

* every client, on every machine, sends a given spec to the *same*
  shard, so cross-client coalescing and cache sharing keep working
  cluster-wide without any shard-to-shard coordination protocol;
* a shard's cache naturally holds exactly its key range — the cluster's
  federated cache is just the shards' ordinary caches plus the
  read-through peer ``lookup`` the daemons do among themselves
  (:mod:`repro.engine.service`);
* results are bit-identical to a local run by construction: a shard
  runs the very same ``execute_job`` on the very same spec.

The :class:`HashRing` uses virtual nodes (many hash points per shard)
so keys spread evenly, and has the property the failover path leans on:
removing a shard only remaps *that shard's* keys — everyone else's
cache locality survives the membership change.

Failure handling: the router drives each shard through the ordinary
:class:`~repro.engine.client.ServiceClient` retry machinery, and when a
shard stays unreachable past its retry budget the router marks it down,
re-routes the stranded jobs along the ring's preference order, and keeps
going — a SIGKILL-ed shard costs its in-flight work one resubmission
(idempotent by content key) and loses nothing.  An all-shards-down
cluster raises :class:`~repro.engine.client.ServiceUnavailable`.

Down-marking is **probation, not a death sentence**: each downed shard
gets a half-open probe on an exponential-backoff schedule (hysteresis —
a flapping shard earns a longer sentence each relapse), and a probe
that answers ``ping`` re-admits the shard to routing.  The shards
themselves gossip an eventually-consistent :class:`MembershipView`
(monotone ``(epoch, beat)`` versions, epoch persisted in the service
journal so a restart outranks its own corpse), which
:meth:`ShardRouter.refresh_membership` merges to discover joins and
accelerate re-admission probes — so a revived shard re-enters every
router's ring without anyone restarting anything.

:class:`ClusterExecutor` / :func:`cluster_engine` wrap the router in the
standard executor/engine shape, which is what ``repro campaign run
--backend cluster`` and ``repro cluster run`` use; ``repro cluster
status`` renders :meth:`ShardRouter.status` — the per-shard ``metrics``
op aggregated into one ops view.
"""

from __future__ import annotations

import bisect
import hashlib
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.engine import faults
from repro.engine.client import (
    RetryPolicy,
    ServiceClient,
    ServiceOverloaded,
    ServiceTimeout,
    ServiceUnavailable,
)
from repro.engine.job import SimJob
from repro.pipeline.result import SimResult

#: Environment variable listing cluster shard addresses (comma-separated).
SHARDS_ENV = "REPRO_CLUSTER_SHARDS"

#: Virtual nodes per shard.  Enough that a handful of shards spread keys
#: within a few percent of even; cheap enough that ring rebuilds are
#: trivial (the ring is ``replicas × shards`` 8-byte points).
DEFAULT_REPLICAS = 64

#: First half-open probe fires this many seconds after a shard drops.
PROBE_BASE = 0.5

#: Probe backoff ceiling — even a chronic flapper is re-tried this often.
PROBE_CAP = 30.0

#: Deadline for one half-open ``ping`` probe.  Short: a probe exists to
#: answer "is it back?" cheaply, not to wait out a wedged shard.
PROBE_TIMEOUT = 2.0


def probe_backoff(failures: int, *, base: float = PROBE_BASE,
                  cap: float = PROBE_CAP) -> float:
    """Seconds until the next half-open probe of a downed shard.

    Doubles per consecutive failed probe (and per prior flap — the
    hysteresis that quarantines an up/down/up shard progressively
    longer), capped so nothing is ever quarantined forever.  Monotone
    non-decreasing in *failures*; pinned by the membership property
    suite.
    """
    return min(cap, base * (2 ** max(0, int(failures))))


@dataclass(frozen=True)
class MemberState:
    """One shard's liveness claim: ``(epoch, beat)``-versioned up/down.

    ``epoch`` counts the shard's incarnations (persisted in its service
    journal, so a restart always outranks claims about its previous
    life); ``beat`` counts heartbeats within an incarnation.  Between
    two claims about the same address the higher ``(epoch, beat)`` wins;
    on a version tie ``down`` wins — a claim of death at the same
    version means the reporter saw the heartbeat *fail*.
    """

    address: str
    epoch: int = 1
    beat: int = 0
    status: str = "up"

    @property
    def version(self) -> tuple[int, int]:
        """The claim's logical clock, ``(epoch, beat)``."""
        return (self.epoch, self.beat)

    def supersedes(self, other: "MemberState | None") -> bool:
        """Whether this claim replaces *other* under the merge rule."""
        if other is None:
            return True
        if self.version != other.version:
            return self.version > other.version
        return self.status == "down" and other.status != "down"

    def to_dict(self) -> dict:
        """Wire form of the claim (the ``gossip`` op's member rows)."""
        return {"address": self.address, "epoch": self.epoch,
                "beat": self.beat, "status": self.status}

    @classmethod
    def from_dict(cls, raw: object) -> "MemberState | None":
        """Parse one wire-form claim; ``None`` for anything malformed.

        Gossip crosses trust and version boundaries, so a bad row must
        cost nothing (it is simply not merged), never an exception.
        """
        if not isinstance(raw, dict):
            return None
        try:
            address = str(raw["address"])
            epoch = int(raw["epoch"])
            beat = int(raw["beat"])
            status = str(raw["status"])
        except (KeyError, TypeError, ValueError):
            return None
        if not address or status not in ("up", "down"):
            return None
        return cls(address=address, epoch=epoch, beat=beat, status=status)


class MembershipView:
    """An eventually-consistent map of shard address → :class:`MemberState`.

    A state-based CRDT: :meth:`observe` keeps the superseding claim per
    address (higher ``(epoch, beat)`` wins, ``down`` wins ties), which
    makes :meth:`merge` commutative, associative and idempotent — any
    set of routers and shards exchanging views in any order converges
    to the same map, the property the membership suite pins.
    """

    def __init__(self, members: dict[str, MemberState] | None = None):
        self.members: dict[str, MemberState] = dict(members or {})

    def observe(self, state: MemberState) -> bool:
        """Fold one claim in; True when it superseded what we held."""
        if state.supersedes(self.members.get(state.address)):
            self.members[state.address] = state
            return True
        return False

    def merge(self, other: "MembershipView | dict | None") -> int:
        """Fold another view (or its wire form) in; claims superseded."""
        changed = 0
        if isinstance(other, MembershipView):
            states = list(other.members.values())
        else:
            rows = other.get("members", ()) if isinstance(other, dict) else ()
            states = [MemberState.from_dict(raw) for raw in rows] \
                if isinstance(rows, (list, tuple)) else []
        for state in states:
            if state is not None and self.observe(state):
                changed += 1
        return changed

    def get(self, address: str) -> MemberState | None:
        """The current claim about *address*, if any."""
        return self.members.get(address)

    def alive(self) -> list[str]:
        """Addresses currently claimed up, sorted for determinism."""
        return sorted(address for address, state in self.members.items()
                      if state.status == "up")

    def to_dict(self) -> dict:
        """Wire form: ``{"members": [claim, ...]}`` in sorted order."""
        return {"members": [self.members[address].to_dict()
                            for address in sorted(self.members)]}

    def __len__(self) -> int:
        return len(self.members)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MembershipView) and \
            self.members == other.members

    def __repr__(self) -> str:
        return f"MembershipView({self.members!r})"


def resolve_shards(explicit: list[str] | None = None) -> list[str]:
    """Resolve the shard address list (flag, else ``$REPRO_CLUSTER_SHARDS``).

    Addresses are ``host:port`` / ``tcp://host:port`` (normalised to the
    latter) or Unix socket paths; order is irrelevant to routing (the
    ring hashes addresses, not positions) but preserved for display.
    """
    if explicit:
        raw = list(explicit)
    else:
        raw = [piece for piece in
               os.environ.get(SHARDS_ENV, "").split(",") if piece.strip()]
    return [normalize_shard(piece) for piece in raw]


def normalize_shard(address: str) -> str:
    """Canonicalise one shard address.

    ``host:port`` becomes ``tcp://host:port`` (the cluster plane is
    TCP-first, and a bare ``host:port`` here is unambiguous in a way a
    generic client target is not); ``tcp://`` addresses and socket
    paths pass through.  Canonical form matters: the ring hashes the
    address string, so two spellings of one shard must collapse.
    """
    text = str(address).strip()
    if text.startswith("tcp://"):
        return text
    host, sep, port = text.rpartition(":")
    if sep and host and port.isdigit():
        return f"tcp://{host}:{port}"
    return text


class HashRing:
    """Consistent-hash ring mapping content keys to shard addresses.

    Each shard contributes :attr:`replicas` virtual nodes — points on a
    64-bit circle at ``sha256(address#i)`` — and a key belongs to the
    first point at or after ``sha256(key)``.  The two properties the
    cluster relies on, both exercised by the property suite:

    * **balance** — with enough virtual nodes, each of N shards owns
      ~1/N of a large key population;
    * **minimal remapping** — adding or removing a shard only moves
      keys onto / off that shard; no key moves *between* two surviving
      shards.
    """

    def __init__(self, shards: list[str],
                 replicas: int = DEFAULT_REPLICAS):
        self.replicas = max(1, int(replicas))
        # De-dup while preserving insertion order for display.
        self.shards: list[str] = list(dict.fromkeys(shards))
        self._points: list[int] = []
        self._owners: list[str] = []
        self._rebuild()

    @staticmethod
    def _hash(label: str) -> int:
        return int.from_bytes(
            hashlib.sha256(label.encode()).digest()[:8], "big")

    def _rebuild(self) -> None:
        pairs = sorted(
            (self._hash(f"{shard}#{replica}"), shard)
            for shard in self.shards
            for replica in range(self.replicas)
        )
        self._points = [point for point, _ in pairs]
        self._owners = [shard for _, shard in pairs]

    def __len__(self) -> int:
        return len(self.shards)

    def add(self, shard: str) -> None:
        """Add a shard (idempotent) and rebuild the ring."""
        if shard not in self.shards:
            self.shards.append(shard)
            self._rebuild()

    def remove(self, shard: str) -> None:
        """Remove a shard (idempotent) and rebuild the ring."""
        if shard in self.shards:
            self.shards.remove(shard)
            self._rebuild()

    def shard_for(self, key: str) -> str:
        """The shard owning *key* (first ring point at/after its hash)."""
        if not self._points:
            raise ServiceUnavailable("the cluster has no shards configured")
        index = bisect.bisect_left(self._points, self._hash(key))
        if index == len(self._points):  # wrap past the top of the circle
            index = 0
        return self._owners[index]

    def preference(self, key: str) -> list[str]:
        """All shards in *key*'s ring order (owner first).

        This is the failover order: when the owner is down, the key's
        jobs go to ``preference(key)[1]``, and so on — the same shard
        every client independently computes, so coalescing survives
        failover too.
        """
        if not self._points:
            return []
        start = bisect.bisect_left(self._points, self._hash(key))
        seen: list[str] = []
        for offset in range(len(self._owners)):
            owner = self._owners[(start + offset) % len(self._owners)]
            if owner not in seen:
                seen.append(owner)
                if len(seen) == len(self.shards):
                    break
        return seen


class ShardRouter:
    """Client-side sharding: route batches by content key, survive shards.

    The router owns one :class:`~repro.engine.client.ServiceClient` per
    shard and a :class:`HashRing` over the shard addresses.
    :meth:`run_jobs` groups a batch by owning shard, submits the groups
    concurrently, and — when a shard exhausts its client's retry budget
    — marks it down and re-routes the stranded jobs along each key's
    ring preference.

    Down-marking is **probation**: each downed shard carries a half-open
    probe timer (:func:`probe_backoff` — exponential in its consecutive
    probe failures *and* its lifetime flap count, so an oscillating
    shard is quarantined progressively longer), and :meth:`maybe_probe`
    — called at every routing round — re-admits any shard whose probe
    ``ping`` answers.  :meth:`refresh_membership` additionally merges
    the shards' gossiped :class:`MembershipView`, which discovers joins
    (new members enter the ring) and fast-tracks probes for members the
    fleet already sees alive again.

    The router is what ``--backend cluster`` campaigns and the
    integration harness drive.  Routing authority stays client-side —
    the gossiped view can only *add* candidates and accelerate probes;
    a shard enters the routing ring through a probe this router ran
    itself, so stale gossip cannot force traffic onto a corpse.
    """

    def __init__(self, shards: list[str] | None = None, *,
                 token: str | None = None,
                 timeout: float | None = None,
                 retry: RetryPolicy | None = None,
                 replicas: int = DEFAULT_REPLICAS,
                 probe_base: float = PROBE_BASE,
                 probe_cap: float = PROBE_CAP,
                 probe_timeout: float = PROBE_TIMEOUT):
        resolved = resolve_shards(shards)
        if not resolved:
            raise ServiceUnavailable(
                "no cluster shards configured: pass --shard/addresses or "
                f"set ${SHARDS_ENV}")
        self.ring = HashRing(resolved, replicas=replicas)
        self.token = token
        self.timeout = timeout
        #: Per-shard retry budget.  Smaller than the single-service
        #: default: the cluster's failover *is* the deep retry, so each
        #: shard only gets enough tries to ride out a worker restart.
        self.retry = retry if retry is not None else RetryPolicy(attempts=3)
        self.probe_base = probe_base
        self.probe_cap = probe_cap
        self.probe_timeout = probe_timeout
        #: The router's copy of the fleet's gossiped membership view
        #: (grown by :meth:`refresh_membership`; advisory only — routing
        #: authority stays with :attr:`ring` minus the probation table).
        self.view = MembershipView()
        self._clients: dict[str, ServiceClient] = {}
        #: Probation table: address -> {reason, since, failures,
        #: next_probe}.  Monotonic-clock timestamps.
        self._down: dict[str, dict] = {}
        #: Lifetime flap count per address — survives re-admission, so a
        #: shard that keeps relapsing starts each sentence longer.
        self._flaps: dict[str, int] = {}
        self.stats = {
            "routed_jobs": 0,
            "misrouted_jobs": 0,  # cluster.route fault diverted these
            "failovers": 0,       # shards marked down
            "rerouted_jobs": 0,   # jobs re-homed after a shard dropped
            "probes": 0,          # half-open probes attempted
            "readmissions": 0,    # downed shards re-admitted to routing
            "joined_shards": 0,   # shards learned from gossip, not config
            "gossip_merges": 0,   # membership claims merged from shards
        }

    # -- membership ------------------------------------------------------

    def client(self, shard: str) -> ServiceClient:
        """The (cached) client for one shard address."""
        if shard not in self._clients:
            self._clients[shard] = ServiceClient(
                shard, timeout=self.timeout, retry=self.retry,
                token=self.token)
        return self._clients[shard]

    def mark_down(self, shard: str, reason: str) -> None:
        """Put a shard on probation; its keys re-route along the ring."""
        if shard not in self._down:
            flaps = self._flaps.get(shard, 0) + 1
            self._flaps[shard] = flaps
            now = time.monotonic()
            self._down[shard] = {
                "reason": reason,
                "since": now,
                "failures": 0,
                "next_probe": now + probe_backoff(
                    flaps - 1, base=self.probe_base, cap=self.probe_cap),
            }
            self.stats["failovers"] += 1
        client = self._clients.pop(shard, None)
        if client is not None:
            client.close()

    def readmit(self, shard: str) -> None:
        """Lift a shard's probation: it takes traffic from the next round."""
        if self._down.pop(shard, None) is not None:
            self.stats["readmissions"] += 1

    def maybe_probe(self, *, force: bool = False) -> list[str]:
        """Half-open probe every downed shard whose timer has expired.

        A probe is one fresh short-deadline ``ping`` (never the cached
        client — its connection died with the shard).  Success re-admits
        the shard; failure pushes the next probe out by
        :func:`probe_backoff` of the shard's accumulated failure count.
        With *force*, timers are ignored — the last-gasp sweep
        :meth:`run_jobs` runs before declaring the whole cluster down.
        Returns the addresses re-admitted now.
        """
        readmitted: list[str] = []
        now = time.monotonic()
        for shard in list(self._down):
            record = self._down.get(shard)
            if record is None or (not force and now < record["next_probe"]):
                continue
            self.stats["probes"] += 1
            try:
                probe = ServiceClient(shard, timeout=self.probe_timeout,
                                      token=self.token)
                with probe:
                    probe.ping()
            except Exception:  # noqa: BLE001 - any failure = still down
                record["failures"] += 1
                record["next_probe"] = time.monotonic() + probe_backoff(
                    self._flaps.get(shard, 1) - 1 + record["failures"],
                    base=self.probe_base, cap=self.probe_cap)
                continue
            self.readmit(shard)
            readmitted.append(shard)
        return readmitted

    def refresh_membership(self) -> MembershipView:
        """Merge the shards' gossiped membership into the router's view.

        Exchanges views with every shard not on probation (best-effort:
        an unreachable shard is skipped, not downed — only real traffic
        downs a shard).  Consequences of the merged view:

        * members the fleet sees **up** that this router never knew join
          the ring (``joined_shards``);
        * members on probation that the fleet sees up get their probe
          timer zeroed, so the next :meth:`maybe_probe` re-checks them
          immediately instead of waiting out the backoff.

        Gossip never *directly* re-admits or downs anything here — the
        probe keeps the final say, so a stale or lying view cannot
        divert traffic onto a corpse.
        """
        for shard in self.alive_shards():
            try:
                response = self.client(shard).gossip(self.view.to_dict())
            except Exception:  # noqa: BLE001 - advisory path, fail open
                continue
            self.stats["gossip_merges"] += self.view.merge(
                response.get("view"))
        for address, state in self.view.members.items():
            if state.status != "up":
                continue
            if address not in self.ring.shards:
                self.ring.add(address)
                self.stats["joined_shards"] += 1
            record = self._down.get(address)
            if record is not None:
                record["next_probe"] = 0.0
        return self.view

    @property
    def down(self) -> dict[str, str]:
        """Shards currently on probation, with the reason each dropped."""
        return {shard: record["reason"]
                for shard, record in self._down.items()}

    @property
    def probation(self) -> dict[str, dict]:
        """The full probation table (reason, since, failures, next_probe)."""
        return {shard: dict(record)
                for shard, record in self._down.items()}

    def alive_shards(self) -> list[str]:
        """Shard addresses not on probation, in configuration order."""
        return [s for s in self.ring.shards if s not in self._down]

    # -- routing ---------------------------------------------------------

    def shard_for_job(self, job: SimJob) -> str:
        """Pick the shard for one job: ring preference minus down shards.

        The ``cluster.route`` fault site bends this decision for the
        chaos suite: ``misroute`` sends the job to its *second*
        preference (a live shard — correctness must not care where a
        job runs), ``drop`` marks the preferred shard down first
        (forcing the rebalance path without any real process dying).
        """
        prefs = [s for s in self.ring.preference(job.content_key())
                 if s not in self._down]
        if not prefs:
            raise ServiceUnavailable(self._all_down_message())
        choice = prefs[0]
        rule = faults.fire("cluster.route")
        if rule is not None:
            if rule.action == "misroute" and len(prefs) > 1:
                choice = prefs[1]
                self.stats["misrouted_jobs"] += 1
            elif rule.action == "drop":
                self.mark_down(choice, "injected cluster.route drop")
                prefs = [s for s in prefs if s != choice]
                if not prefs:
                    raise ServiceUnavailable(self._all_down_message())
                choice = prefs[0]
        self.stats["routed_jobs"] += 1
        return choice

    def route(self, jobs: list[SimJob]) -> dict[str, list[SimJob]]:
        """Group *jobs* by their target shard (order preserved per group)."""
        groups: dict[str, list[SimJob]] = {}
        for job in jobs:
            groups.setdefault(self.shard_for_job(job), []).append(job)
        return groups

    def _all_down_message(self) -> str:
        reasons = "; ".join(
            f"{shard}: {record['reason']}"
            for shard, record in self._down.items())
        return (f"all {len(self.ring.shards)} cluster shard(s) are down "
                f"({reasons})")

    # -- execution -------------------------------------------------------

    def _run_group(self, shard: str,
                   group: list[SimJob]) -> list[SimResult] | Exception:
        """One shard's share of a batch; transient failure downs the shard.

        Runs on a router-private thread (groups are disjoint shards, so
        each client is driven by exactly one thread per round).  Returns
        the exception instead of raising so the round can distinguish
        "this shard died, re-route its jobs" from "this *job* is bad,
        propagate" without tearing down sibling groups mid-flight.
        """
        try:
            return self.client(shard).run_jobs(group)
        except (ServiceUnavailable, ServiceTimeout) as exc:
            self.mark_down(shard, str(exc))
            return exc
        except Exception as exc:  # noqa: BLE001 - collected, re-raised
            return exc

    def run_jobs(self, jobs: list[SimJob]) -> list[SimResult]:
        """Run a batch across the cluster; results in submission order.

        Each round routes the still-unfinished jobs, submits one group
        per live shard concurrently, and loops while failovers strand
        work — so a shard SIGKILL-ed mid-batch costs exactly one
        re-route of its jobs.  Duplicate specs within the batch are
        submitted once and fanned back out, mirroring the daemons' own
        coalescing.  Non-transient errors (a failing job, an auth
        rejection) propagate immediately.
        """
        if not jobs:
            return []
        by_key: dict[str, SimResult] = {}
        pending: list[SimJob] = []
        seen: set[str] = set()
        for job in jobs:
            key = job.content_key()
            if key not in seen:
                seen.add(key)
                pending.append(job)
        while pending:
            # Give healed shards a chance before each round: probes whose
            # backoff expired run here, so re-admission happens *during*
            # long batches, not only between CLI invocations.
            self.maybe_probe()
            groups = self.route(pending)
            with ThreadPoolExecutor(max_workers=len(groups)) as pool:
                outcomes = {
                    shard: pool.submit(self._run_group, shard, group)
                    for shard, group in groups.items()
                }
            stranded: list[SimJob] = []
            hard_error: Exception | None = None
            for shard, future in outcomes.items():
                outcome = future.result()
                group = groups[shard]
                if isinstance(outcome, (ServiceUnavailable, ServiceTimeout)):
                    stranded.extend(group)
                    self.stats["rerouted_jobs"] += len(group)
                elif isinstance(outcome, Exception):
                    hard_error = outcome
                else:
                    for job, result in zip(group, outcome):
                        by_key[job.content_key()] = result
            if hard_error is not None:
                raise hard_error
            pending = stranded
            if pending and not self.alive_shards():
                # Last gasp before declaring the fleet dead: probe every
                # probation entry immediately (a stalled-then-resumed
                # shard answers here).  Only an all-probes-failed cluster
                # is actually down.
                if not self.maybe_probe(force=True):
                    raise ServiceUnavailable(self._all_down_message())
        return [by_key[job.content_key()] for job in jobs]

    # -- ops surface -----------------------------------------------------

    def status(self, probe_timeout: float = 5.0) -> dict:
        """One aggregated ops view: ring, router counters, shard metrics.

        Scrapes every shard's ``metrics`` op (short deadline, fresh
        connection per probe so a wedged shard cannot hold the status
        call hostage) and reports unreachable shards as such instead of
        failing the aggregate — a status command that dies when a shard
        does would be useless exactly when it matters.
        """
        self.maybe_probe()
        rows = []
        for shard in self.ring.shards:
            row: dict = {"address": shard, "down": shard in self._down}
            if shard in self._down:
                record = self._down[shard]
                row["reason"] = record["reason"]
                row["probe_failures"] = record["failures"]
                row["next_probe_in_s"] = round(
                    max(0.0, record["next_probe"] - time.monotonic()), 3)
            else:
                try:
                    probe = ServiceClient(shard, timeout=probe_timeout,
                                          token=self.token)
                    with probe:
                        row["metrics"] = probe.metrics()
                except Exception as exc:  # noqa: BLE001 - ops surface
                    row["unreachable"] = str(exc)
            rows.append(row)
        return {
            "shards": rows,
            "ring": {"shards": len(self.ring.shards),
                     "replicas": self.ring.replicas,
                     "alive": len(self.alive_shards())},
            "router": dict(self.stats),
            "membership": self.view.to_dict(),
        }

    def shutdown(self) -> dict[str, bool]:
        """Ask every live shard to exit; ``{address: acknowledged}``."""
        acked: dict[str, bool] = {}
        for shard in self.alive_shards():
            try:
                self.client(shard).shutdown()
                acked[shard] = True
            except Exception:  # noqa: BLE001 - best-effort fan-out
                acked[shard] = False
        return acked

    def close(self) -> None:
        """Drop every cached connection (the router stays usable)."""
        for client in self._clients.values():
            client.close()
        self._clients.clear()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ClusterExecutor:
    """Executor backend that fans batches out across cluster shards.

    The cluster-shaped sibling of
    :class:`~repro.engine.client.ServiceExecutor`: same ``run`` /
    ``jobs`` / ``describe`` surface, so an ordinary
    :class:`~repro.engine.api.Engine` (and therefore the whole campaign
    / checkpoint / figure stack) runs cluster-wide unchanged.  ``jobs``
    is the summed worker count of the shards that answered ``ping`` —
    campaign chunk sizing then matches the cluster's real width.
    """

    def __init__(self, router: ShardRouter):
        self.router = router
        total = 0
        for shard in list(router.alive_shards()):
            try:
                total += int(router.client(shard).ping().get("workers", 1))
            except (ServiceUnavailable, ServiceTimeout) as exc:
                router.mark_down(shard, str(exc))
        if not router.alive_shards():
            raise ServiceUnavailable(router._all_down_message())
        self.jobs = max(1, total)

    def run(self, jobs: list[SimJob]) -> list[SimResult]:
        """Run one batch across the cluster (engine executor hook)."""
        if not jobs:
            return []
        return self.router.run_jobs(jobs)

    def describe(self) -> str:
        """Human-readable backend label for campaign/status output."""
        return (f"cluster({len(self.router.ring.shards)} shards, "
                f"{self.jobs} workers)")


def cluster_engine(shards: list[str] | None = None, *,
                   token: str | None = None,
                   timeout: float | None = None):
    """An :class:`~repro.engine.api.Engine` whose batches run on a cluster.

    Mirrors :func:`~repro.engine.client.service_engine`: the local cache
    is memory-only (persistence and sharing live shard-side, partitioned
    by the ring), the executor is a :class:`ClusterExecutor` over a
    fresh :class:`ShardRouter`.  This is ``repro campaign run --backend
    cluster`` and ``repro cluster run``.
    """
    from repro.engine.api import Engine
    from repro.engine.cache import ResultCache

    router = ShardRouter(shards, token=token, timeout=timeout)
    return Engine(executor=ClusterExecutor(router), cache=ResultCache(None))
