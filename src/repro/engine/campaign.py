"""Declarative campaigns: named axes that expand to engine job grids.

The paper's evaluation is a family of *sweeps* — predictor kind ×
confidence × recovery × workload, with figure-specific extras — and this
module makes such sweeps first-class values instead of ad-hoc loops:

* an :class:`AxisBlock` maps axis names (``SimJob.make`` keyword names)
  to value lists, expanded as a cross-product or zipped, then filtered;
* a :class:`CampaignSpec` is a named list of blocks (so "a grid plus its
  baselines" is one spec), with a deterministic :meth:`campaign_key`
  derived from the unique job content keys;
* :func:`run_campaign` executes a spec through an :class:`~repro.engine.api.Engine`
  in checkpointable chunks, optionally journaling every completed job to a
  :class:`~repro.engine.checkpoint.CampaignJournal` so a killed sweep
  resumes where it stopped, and streaming :class:`CampaignEvent` progress
  callbacks;
* the returned :class:`CampaignResult` carries aggregation hooks
  (:meth:`~CampaignResult.by`, :meth:`~CampaignResult.lookup`,
  :meth:`~CampaignResult.speedup_by_workload`) that the figure and
  analysis layers consume directly.

See DESIGN.md, "Campaign & checkpoint architecture".
"""

from __future__ import annotations

import hashlib
import itertools
import sys
from collections.abc import Callable, Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.engine.api import Engine, default_engine
from repro.engine.checkpoint import CampaignJournal, JournalHeader
from repro.engine.job import DEFAULT_MEASURE, DEFAULT_WARMUP, SimJob
from repro.pipeline.config import CoreConfig
from repro.pipeline.result import SimResult

#: Axis names a block may sweep — exactly the ``SimJob.make`` keywords.
AXIS_NAMES = (
    "workload",
    "predictor",
    "fpc",
    "recovery",
    "entries",
    "n_uops",
    "warmup",
    "seed",
    "config",
)

#: Default value of every job field, used to normalise points so that
#: lookups can filter on axes a block left implicit.
_POINT_DEFAULTS: dict[str, Any] = {
    "predictor": "none",
    "fpc": True,
    "recovery": "squash",
    "entries": 8192,
    "n_uops": DEFAULT_MEASURE,
    "warmup": DEFAULT_WARMUP,
    "seed": None,
    "config": None,
}


def _check_axis_names(names: Iterable[str]) -> None:
    unknown = [n for n in names if n not in AXIS_NAMES]
    if unknown:
        raise ValueError(
            f"unknown campaign axes {unknown}; valid axes: {', '.join(AXIS_NAMES)}"
        )


@dataclass(frozen=True)
class AxisBlock:
    """One axes→values mapping plus how to expand it.

    ``axes`` preserves declaration order (the product iterates the last
    axis fastest); ``base`` pins job fields shared by every point;
    ``filters`` are predicates over the expanded point dict — a point
    survives only if every filter returns true.  Filters run on *points*,
    before jobs are built, so they can express cross-axis constraints
    ("skip reissue for the oracle") declaratively at the spec layer.
    """

    axes: tuple[tuple[str, tuple], ...]
    mode: str = "product"
    base: tuple[tuple[str, Any], ...] = ()
    filters: tuple[Callable[[dict], bool], ...] = ()

    @classmethod
    def make(
        cls,
        axes: Mapping[str, Iterable],
        *,
        mode: str = "product",
        base: Mapping[str, Any] | None = None,
        filters: Iterable[Callable[[dict], bool]] = (),
    ) -> "AxisBlock":
        if mode not in ("product", "zip"):
            raise ValueError(f"mode must be 'product' or 'zip', not {mode!r}")
        axis_items = tuple((name, tuple(values)) for name, values in axes.items())
        base_items = tuple((base or {}).items())
        _check_axis_names([n for n, _ in axis_items])
        _check_axis_names([n for n, _ in base_items])
        overlap = {n for n, _ in axis_items} & {n for n, _ in base_items}
        if overlap:
            raise ValueError(f"axes and base both set {sorted(overlap)}")
        if mode == "zip" and axis_items:
            lengths = {len(values) for _, values in axis_items}
            if len(lengths) > 1:
                raise ValueError(
                    f"zip mode needs equal-length axes; got lengths {sorted(lengths)}"
                )
        return cls(axes=axis_items, mode=mode, base=base_items,
                   filters=tuple(filters))

    def points(self) -> list[dict]:
        """Expand to normalised point dicts (every job field present)."""
        names = [n for n, _ in self.axes]
        value_lists = [v for _, v in self.axes]
        if not names:
            combos: Iterable[tuple] = [()]
        elif self.mode == "zip":
            combos = zip(*value_lists)
        else:
            combos = itertools.product(*value_lists)
        out = []
        base = dict(self.base)
        for combo in combos:
            point = dict(_POINT_DEFAULTS)
            point.update(base)
            point.update(zip(names, combo))
            if "workload" not in point:
                raise ValueError("every campaign point needs a 'workload'")
            if all(f(point) for f in self.filters):
                out.append(point)
        return out

    def describe(self) -> dict:
        return {
            "axes": {name: [_jsonable(v) for v in values]
                     for name, values in self.axes},
            "mode": self.mode,
            "base": {name: _jsonable(v) for name, v in self.base},
            "filters": len(self.filters),
        }


def _jsonable(value: Any) -> Any:
    if isinstance(value, CoreConfig):
        return value.to_dict()
    return value


@dataclass(frozen=True)
class CampaignSpec:
    """A named, declarative sweep: one or more axis blocks.

    Build directly from one axes mapping::

        spec = CampaignSpec.make(
            "fpc-sweep",
            axes={"predictor": ["lvp", "vtage"], "fpc": [False, True],
                  "workload": ["gzip", "crafty"]},
            base={"n_uops": 36_000, "warmup": 12_000},
        )

    or compose blocks (a figure grid plus its no-VP baselines) with
    :meth:`union`.  ``meta`` carries renderer hints (slice sizes, workload
    order); it is *not* part of the campaign identity — only the expanded
    job set is.
    """

    name: str
    blocks: tuple[AxisBlock, ...]
    meta: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def make(
        cls,
        name: str,
        axes: Mapping[str, Iterable],
        *,
        mode: str = "product",
        base: Mapping[str, Any] | None = None,
        filters: Iterable[Callable[[dict], bool]] = (),
        meta: Mapping[str, Any] | None = None,
    ) -> "CampaignSpec":
        block = AxisBlock.make(axes, mode=mode, base=base, filters=filters)
        return cls(name=name, blocks=(block,), meta=tuple((meta or {}).items()))

    @classmethod
    def union(cls, name: str, *specs: "CampaignSpec | AxisBlock",
              meta: Mapping[str, Any] | None = None) -> "CampaignSpec":
        """Combine specs/blocks into one campaign (jobs dedupe on run)."""
        blocks: list[AxisBlock] = []
        for spec in specs:
            if isinstance(spec, AxisBlock):
                blocks.append(spec)
            else:
                blocks.extend(spec.blocks)
        return cls(name=name, blocks=tuple(blocks),
                   meta=tuple((meta or {}).items()))

    def meta_dict(self) -> dict:
        return dict(self.meta)

    def points(self) -> list[dict]:
        return [point for block in self.blocks for point in block.points()]

    def jobs(self) -> list[SimJob]:
        """One job per point, in point order (duplicates preserved)."""
        return [SimJob.make(**point) for point in self.points()]

    def unique_jobs(self) -> dict[str, SimJob]:
        """Content-key → job, first occurrence wins, order preserved."""
        unique: dict[str, SimJob] = {}
        for job in self.jobs():
            unique.setdefault(job.content_key(), job)
        return unique

    def campaign_key(self) -> str:
        """Digest of the expanded job set — the journal-binding identity.

        Depends only on *which simulations* the spec denotes (sorted unique
        job content keys), so respelling axes, reordering blocks or
        renaming the campaign never orphans a checkpoint, while any change
        to the actual job set does.
        """
        return _digest_job_keys(self.unique_jobs())

    def header(self) -> JournalHeader:
        unique = self.unique_jobs()
        return JournalHeader(campaign=self.name, key=_digest_job_keys(unique),
                             total=len(unique))

    def describe(self) -> dict:
        unique = self.unique_jobs()
        return {
            "name": self.name,
            "blocks": [block.describe() for block in self.blocks],
            "points": len(self.points()),
            "unique_jobs": len(unique),
            "key": self.campaign_key(),
        }


def _digest_job_keys(keys: Iterable[str]) -> str:
    return hashlib.sha256("\n".join(sorted(keys)).encode()).hexdigest()


# ---------------------------------------------------------------------------
# Execution.
# ---------------------------------------------------------------------------

#: Campaign execution backends ``engine_for_backend`` understands.
BACKENDS = ("local", "service", "cluster")


def engine_for_backend(
    backend: str = "local",
    socket_path: str | Path | None = None,
    shards: list[str] | None = None,
    token: str | None = None,
) -> Engine:
    """Resolve a campaign execution backend name to an :class:`Engine`.

    ``local`` is the in-process default engine (serial or pool, per
    ``REPRO_JOBS``); ``service`` targets a running ``repro serve`` daemon
    at *socket_path* — batches travel over the socket, and overlapping
    campaigns from concurrent clients share the daemon's hot cache and
    in-flight dedupe.  ``cluster`` routes batches across the *shards*
    addresses (``repro cluster serve`` daemons, flag or
    ``$REPRO_CLUSTER_SHARDS``) by consistent-hashed content key —
    same sharing story, N machines wide.  Campaign journals stay
    client-side either way, so ``campaign resume`` semantics are
    identical across backends.
    """
    if backend == "local":
        return default_engine()
    if backend == "service":
        from repro.engine.client import service_engine

        return service_engine(socket_path, token=token)
    if backend == "cluster":
        from repro.engine.cluster import cluster_engine

        return cluster_engine(shards, token=token)
    raise ValueError(
        f"unknown campaign backend {backend!r}; pick one of {BACKENDS}"
    )


@dataclass(frozen=True)
class CampaignEvent:
    """One progress tick: a job completed (or was replayed from disk)."""

    done: int
    total: int
    job: SimJob
    result: SimResult
    source: str  # "journal" | "engine"


def progress_printer(name: str, stream=None) -> Callable[[CampaignEvent], None]:
    """A carriage-return progress callback for terminal runs.

    The one implementation behind the CLI, the reproduce driver and the
    examples; callers print their own summary line (after a bare
    ``print(file=stream)`` to terminate the ``\\r`` line).
    """
    out = stream if stream is not None else sys.stderr

    def progress(event: CampaignEvent) -> None:
        print(f"\r[{name}] {event.done}/{event.total} "
              f"{event.job.label():<44}", end="", file=out, flush=True)

    return progress


@dataclass
class CampaignResult:
    """Executed campaign: points, results and aggregation hooks.

    ``keys`` holds each point's job content key, computed once at run
    time, so the aggregation hooks below never re-serialise or re-hash a
    job spec.
    """

    spec: CampaignSpec
    points: list[dict]
    jobs: list[SimJob]
    keys: list[str]
    results_by_key: dict[str, SimResult]
    stats: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.points)

    @property
    def results(self) -> list[SimResult]:
        """Results aligned with :attr:`points` (duplicates share objects)."""
        return [self.results_by_key[key] for key in self.keys]

    def __iter__(self):
        return iter(zip(self.points, self.results))

    # -- aggregation hooks ----------------------------------------------

    def _indices(self, axes: dict) -> list[int]:
        return [
            i
            for i, point in enumerate(self.points)
            if all(point.get(name) == value for name, value in axes.items())
        ]

    def select(self, **axes: Any) -> list[tuple[dict, SimResult]]:
        """Points (with results) whose fields match every given value."""
        return [(self.points[i], self.results_by_key[self.keys[i]])
                for i in self._indices(axes)]

    def lookup(self, **axes: Any) -> SimResult:
        """The single result matching the given axis values.

        Points that collapse onto the same job (identical content keys)
        count as one; genuinely ambiguous or empty selections raise.
        """
        indices = self._indices(axes)
        if not indices:
            raise KeyError(f"no campaign point matches {axes}")
        keys = {self.keys[i] for i in indices}
        if len(keys) > 1:
            raise KeyError(
                f"{axes} matches {len(keys)} distinct jobs; add more axes"
            )
        return self.results_by_key[self.keys[indices[0]]]

    def by(self, axis: str, **fixed: Any) -> dict[Any, SimResult]:
        """Results keyed by one axis, with other axes optionally pinned.

        Preserves point order.  Raises if two *different* jobs land on the
        same key — that means ``fixed`` under-constrains the selection.
        """
        out: dict[Any, SimResult] = {}
        seen_jobs: dict[Any, str] = {}
        for i in self._indices(fixed):
            key = self.points[i].get(axis)
            content = self.keys[i]
            if key in seen_jobs and seen_jobs[key] != content:
                raise KeyError(
                    f"by({axis!r}, **{fixed}) is ambiguous at {key!r}; "
                    "pin more axes"
                )
            seen_jobs[key] = content
            out[key] = self.results_by_key[content]
        return out

    def speedup_by_workload(self, **fixed: Any) -> dict[str, float]:
        """Per-workload speedup of the selected runs over the campaign's
        own no-VP baselines (``predictor="none"`` points)."""
        baselines = self.by("workload", predictor="none")
        if not baselines:
            raise KeyError(
                "speedup_by_workload needs predictor='none' baseline points "
                "in the campaign; add a baseline block to the spec"
            )
        runs = self.by("workload", **fixed)
        missing = [w for w in runs if w not in baselines]
        if missing:
            raise KeyError(
                f"no predictor='none' baseline for workload(s) {missing}"
            )
        return {
            workload: result.speedup_over(baselines[workload])
            for workload, result in runs.items()
        }


def run_campaign(
    spec: CampaignSpec,
    *,
    engine: Engine | None = None,
    journal: CampaignJournal | str | Path | None = None,
    chunk_size: int | None = None,
    progress: Callable[[CampaignEvent], None] | None = None,
    force: bool = False,
) -> CampaignResult:
    """Execute a campaign, optionally journaled for crash-safe resume.

    Jobs are deduplicated by content key, then the not-yet-journaled
    remainder runs through the engine in checkpointable chunks of
    ``chunk_size``.  The default chunking depends on whether a journal is
    in play: with one, per-job for a serial executor and ``4 × workers``
    for a pool (a kill loses at most one chunk while a pool still gets
    full batches); without one there is nothing to checkpoint, so the
    whole remainder goes down as a single batch (one pool spin-up, maximal
    parallelism).  Every completed chunk is appended to the journal —
    **including jobs the result cache answered**, so journal and cache
    always tell the same story — before the next chunk starts.  Replayed
    journal entries are pushed into the engine's result cache, which is
    what makes follow-up per-cell lookups (figure rendering, analysis)
    pure cache hits.

    ``progress`` receives a :class:`CampaignEvent` per completed job,
    replayed journal entries included.
    """
    if chunk_size is not None and chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    engine = engine or default_engine()
    points = spec.points()
    jobs = [SimJob.make(**point) for point in points]
    keys = [job.content_key() for job in jobs]
    unique: dict[str, SimJob] = {}
    for key, job in zip(keys, jobs):
        unique.setdefault(key, job)
    total = len(unique)

    if isinstance(journal, (str, Path)):
        journal = CampaignJournal(journal)
    completed: dict[str, SimResult] = {}
    stats = {"total": total, "from_journal": 0, "executed": 0,
             "cache_hits": 0}
    try:
        if journal is not None:
            journal.open(
                JournalHeader(campaign=spec.name,
                              key=_digest_job_keys(unique), total=total),
                force=force,
            )
            for key, job in unique.items():
                replayed = journal.entries.get(key)
                if replayed is None:
                    continue
                completed[key] = replayed
                # Memory layer only: the journal already holds the result
                # durably, so re-persisting every entry on each resume or
                # re-render would be pure disk churn.
                engine.cache.put_memory(job, replayed)
                stats["from_journal"] += 1
                if progress is not None:
                    progress(CampaignEvent(len(completed), total, job,
                                           replayed, "journal"))

        remaining = [job for key, job in unique.items() if key not in completed]
        if chunk_size is None:
            if journal is None:
                # Nothing to checkpoint: submit everything as one batch.
                chunk_size = max(1, len(remaining))
            else:
                workers = engine.executor.jobs
                chunk_size = 1 if workers <= 1 else 4 * workers
        hits_before = engine.cache.hits
        for start in range(0, len(remaining), chunk_size):
            chunk = remaining[start:start + chunk_size]
            chunk_results = engine.run_jobs(chunk)
            for job, result in zip(chunk, chunk_results):
                completed[job.content_key()] = result
                stats["executed"] += 1
                if journal is not None:
                    journal.record(job, result)
                if progress is not None:
                    progress(CampaignEvent(len(completed), total, job,
                                           result, "engine"))
        stats["cache_hits"] = engine.cache.hits - hits_before
    finally:
        if journal is not None:
            journal.close()

    return CampaignResult(spec=spec, points=points, jobs=jobs, keys=keys,
                          results_by_key=completed, stats=stats)
