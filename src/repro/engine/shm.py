"""Shared-memory trace plane: materialise once, attach everywhere.

Before PR 5 every worker process rebuilt each trace from its generator —
per process, per batch, per daemon restart — because job payloads carry
only the :class:`~repro.engine.job.SimJob` spec.  This module gives the
parent (batch :class:`~repro.engine.executors.PoolExecutor` run or
``repro serve`` daemon) a :class:`SharedTraceRegistry`: each unique
``(workload, total µops, seed)`` trace is materialised **once** (from the
in-process cache, the on-disk trace store, or the generator), its packed
columns are laid into one ``multiprocessing.shared_memory`` segment, and
workers receive a small *spec* dict naming the segment instead of
rebuilding.  :func:`adopt_shared_trace` on the worker side attaches the
segment, copies the packed bytes out (a memcpy, ~3 MB for a 48k-µop
trace, versus ~250 ms of generator time), seeds the worker's trace cache
and closes the segment — so segment lifetime is bounded by job transport,
not worker lifetime, and a worker killed mid-copy can never strand a
mapping the parent doesn't know about.

Lifecycle: the registry refcounts **leases** (one per in-flight
assignment).  Segments with live leases are pinned; at refcount zero they
move to an idle LRU bounded by a byte budget, so a long-lived daemon
reuses hot segments across submissions without unbounded ``/dev/shm``
growth.  ``close()`` unlinks everything regardless of refcounts — the
pool-shutdown path — and the queue's watchdog releases a dead worker's
lease when it requeues the orphaned job.

Everything here is best-effort: any failure (no ``/dev/shm``, size limit,
a torn segment) degrades to the worker building the trace itself, which
is always correct.  ``REPRO_SHM=0`` disables the plane outright (the
benchmark uses that to measure the legacy behaviour).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from multiprocessing import shared_memory

from repro.engine import faults
from repro.engine.faults import InjectedFault
from repro.isa.trace import PackedColumns, Trace

#: Environment variable gating the shared-memory plane (``0``/``off``
#: disables it; anything else, including unset, enables it).
SHM_ENV = "REPRO_SHM"

#: Default byte budget for *idle* (unleased) segments kept for reuse.
IDLE_BYTES_BUDGET = 256 * 1024 * 1024

#: Returned by :meth:`SharedTraceRegistry.lease` with ``generate=False``
#: when serving the lease would require running a generator: the caller
#: should run :func:`prepare_trace` off its latency-sensitive thread and
#: lease again once it completes.
NEEDS_GENERATION = object()


def shm_enabled() -> bool:
    """Whether the shared-memory trace plane is enabled (``$REPRO_SHM``)."""
    return os.environ.get(SHM_ENV, "").strip().lower() not in (
        "0", "off", "false", "no",
    )


class _Segment:
    """One shared trace: its segment, transport spec and lease count."""

    __slots__ = ("shm", "spec", "nbytes", "leases")

    def __init__(self, shm, spec: dict, nbytes: int):
        self.shm = shm
        self.spec = spec
        self.nbytes = nbytes
        self.leases = 0


class SharedTraceRegistry:
    """Parent-side owner of the shared trace segments.

    Not thread-safe by design: the pool executor uses it from one thread
    and the job queue only ever touches it on the event loop.
    """

    def __init__(self, idle_bytes: int = IDLE_BYTES_BUDGET):
        self.idle_bytes = idle_bytes
        self._segments: dict[tuple[str, int, int], _Segment] = {}
        self._idle: OrderedDict[tuple[str, int, int], None] = OrderedDict()
        self.shared = 0     # leases handed out
        self.materialized = 0  # segments created
        self.failures = 0   # materialisation failures (degraded to rebuild)
        self._closed = False

    # -- leasing ---------------------------------------------------------

    def lease(self, workload: str, total_uops: int, seed: int | None = None,
              generate: bool = True):
        """Lease the shared segment for one trace identity.

        Returns ``(lease_key, spec_dict)`` — the spec is what travels to
        the worker; the key releases the lease — or ``None`` when the
        plane is unavailable (disabled, closed, or materialisation
        failed), in which case the caller just ships the job bare.

        With ``generate=False`` a lease that would have to run a trace
        generator returns :data:`NEEDS_GENERATION` instead: segments are
        still materialised from the in-process cache or the trace store
        (both cheap), but generator runs are left to the caller via
        :func:`prepare_trace` — the job queue uses this to keep
        multi-hundred-millisecond builds off the daemon's event loop.
        """
        if self._closed or not shm_enabled():
            return None
        # Imported here: catalog sits on the workloads layer above isa and
        # must stay importable without the engine.
        from repro.workloads.catalog import resolve_seed

        try:
            key = (workload, total_uops, resolve_seed(workload, seed))
        except KeyError:
            return None  # unknown workload: let the worker raise properly
        segment = self._segments.get(key)
        if segment is None:
            if not generate and not self._cheaply_available(key):
                return NEEDS_GENERATION
            segment = self._materialize(key)
            if segment is None:
                return None
        segment.leases += 1
        self._idle.pop(key, None)
        self.shared += 1
        return key, segment.spec

    @staticmethod
    def _cheaply_available(key: tuple) -> bool:
        """Whether this trace can be materialised without a generator run
        (already in the process cache, or present in the trace store)."""
        from repro.workloads.catalog import cached_trace
        from repro.workloads.store import default_trace_store

        workload, total_uops, seed = key
        if cached_trace(workload, total_uops, seed) is not None:
            return True
        store = default_trace_store()
        return store is not None and store.contains(workload, total_uops, seed)

    def release(self, key: tuple) -> None:
        """Return one lease; idle segments join the bounded reuse LRU."""
        segment = self._segments.get(key)
        if segment is None:
            return
        if segment.leases > 0:
            segment.leases -= 1
        if segment.leases == 0 and not self._closed:
            self._idle[key] = None
            self._idle.move_to_end(key)
            self._evict_idle()

    def _materialize(self, key: tuple) -> _Segment | None:
        from repro.workloads.catalog import build_trace

        workload, total_uops, seed = key
        try:
            rule = faults.fire("shm.materialize")
            if rule is not None:
                raise InjectedFault("injected shm materialisation failure")
            trace = build_trace(workload, total_uops, seed=seed)
            packed = trace.packed()
            layout, total_bytes = packed.buffer_layout()
            shm = shared_memory.SharedMemory(
                create=True, size=max(1, total_bytes)
            )
            try:
                packed.write_into(shm.buf)
            except Exception:
                shm.close()
                shm.unlink()
                raise
        except Exception:  # noqa: BLE001 - any shm/IO failure degrades
            self.failures += 1
            return None
        spec = {
            "shm": shm.name,
            "workload": workload,
            "total_uops": total_uops,
            "seed": seed,
            "n": packed.n,
            "layout": layout,
        }
        segment = _Segment(shm, spec, total_bytes)
        self._segments[key] = segment
        self.materialized += 1
        return segment

    def _evict_idle(self) -> None:
        idle_total = sum(self._segments[k].nbytes for k in self._idle)
        while self._idle and idle_total > self.idle_bytes:
            key, _ = self._idle.popitem(last=False)
            segment = self._segments.pop(key)
            idle_total -= segment.nbytes
            self._destroy(segment)

    @staticmethod
    def _destroy(segment: _Segment) -> None:
        try:
            segment.shm.close()
            segment.shm.unlink()
        except OSError:
            pass

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Unlink every segment (pool shutdown); leases are moot now."""
        self._closed = True
        for segment in self._segments.values():
            self._destroy(segment)
        self._segments.clear()
        self._idle.clear()

    def stats(self) -> dict:
        """Occupancy and lifetime counters (surfaced by ``repro status``)."""
        return {
            "segments": len(self._segments),
            "bytes": sum(s.nbytes for s in self._segments.values()),
            "leased": sum(1 for s in self._segments.values() if s.leases),
            "materialized": self.materialized,
            "shared": self.shared,
            "failures": self.failures,
        }


def prepare_trace(workload: str, total_uops: int,
                  seed: int | None = None) -> "object | None":
    """Generate (and persist) one trace without touching shared state.

    Runs the generator with the process cache bypassed, columnizes, and
    writes the result to the trace store when one is configured — all
    safe from a worker thread, since nothing here mutates the catalog's
    LRU or the registry.  The caller (on its own thread/loop) installs
    the returned trace with :func:`repro.workloads.catalog.seed_trace`,
    after which a registry lease materialises from the cache.  Returns
    ``None`` on any failure.
    """
    try:
        from repro.workloads.catalog import build_trace, resolve_seed
        from repro.workloads.store import default_trace_store

        trace = build_trace(workload, total_uops, seed=seed, cache=False)
        trace.columns()
        store = default_trace_store()
        if store is not None:
            store.put(trace, workload, total_uops,
                      resolve_seed(workload, seed))
        return trace
    except Exception:  # noqa: BLE001 - caller degrades to bare dispatch
        return None


def adopt_shared_trace(spec: dict) -> bool:
    """Worker-side: install the trace named by *spec* into the local cache.

    Attaches the parent's segment, copies the packed columns out, closes
    the segment, and seeds the worker's trace cache so the subsequent
    ``execute_job`` → ``build_trace`` call hits.  Returns ``True`` on
    success; any failure returns ``False`` and the worker falls back to
    building the trace itself (correct either way, just slower).
    """
    try:
        from repro.workloads.catalog import cached_trace, seed_trace

        rule = faults.fire("shm.attach")
        if rule is not None:
            raise InjectedFault("injected shm attach failure")
        workload = spec["workload"]
        total_uops = spec["total_uops"]
        seed = spec["seed"]
        if cached_trace(workload, total_uops, seed) is not None:
            return True  # e.g. fork-inherited from the parent's cache
        # Note on the resource tracker: attaching re-registers the segment,
        # but workers share the owning parent's tracker process, so the
        # registration set dedupes and the parent's unlink unregisters it
        # exactly once — attachers must NOT unregister themselves (that
        # would strip the owner's registration and break crash cleanup).
        shm = shared_memory.SharedMemory(name=spec["shm"])
        try:
            packed = PackedColumns.from_buffer(
                shm.buf, spec["layout"], spec["n"], copy=True
            )
        finally:
            shm.close()
        packed.validate()
        trace = Trace.from_packed(packed, name=workload)
        trace.columns()
        seed_trace(workload, total_uops, seed, trace)
        return True
    except Exception:  # noqa: BLE001 - degrade to a local rebuild
        return False
