"""Result caching: an in-process layer plus a persistent JSON store.

Every cache entry is keyed by the owning job's content key (a digest of
the full job spec, including the core-config content), so a hit is only
possible for a spec-identical simulation.  The disk layout is one small
JSON file per result under ``<dir>/<key[:2]>/<key>.json`` — entries are
written through :func:`repro.util.atomicio.atomic_write_text` (temp
file, fsync, rename) so neither concurrent executors nor a crash
mid-write can ever leave a torn committed file, and every write passes
the ``cache.write`` fault-injection site
(:mod:`repro.engine.faults`) so the chaos suite can prove it.

The disk layer is optional: by default the engine runs memory-only, and
persists when ``REPRO_CACHE_DIR`` (or the CLI ``--cache-dir``-equivalent
configuration) points somewhere.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.engine.job import SimJob
from repro.pipeline.result import SimResult
from repro.util import profiling
from repro.util.atomicio import atomic_write_text

#: Environment variable selecting the persistent cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: On-disk entry format version; mismatched entries are ignored.
CACHE_FORMAT_VERSION = 1


def default_cache_dir() -> Path | None:
    """Resolve the persistent cache directory (None = memory-only)."""
    raw = os.environ.get(CACHE_DIR_ENV, "").strip()
    return Path(raw) if raw else None


class ResultCache:
    """Two-level (memory, optional disk) cache of :class:`SimResult`s."""

    def __init__(self, directory: str | os.PathLike | None = None):
        self.directory = Path(directory) if directory is not None else None
        self._memory: dict[str, SimResult] = {}
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.stores = 0
        self.write_failures = 0  # failed persists (results stay in memory)

    # -- key plumbing ---------------------------------------------------

    def _path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / key[:2] / f"{key}.json"

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    def __len__(self) -> int:
        return len(self._memory)

    # -- lookup/store ---------------------------------------------------

    def get(self, job: SimJob) -> SimResult | None:
        key = job.content_key()
        cached = self._memory.get(key)
        if cached is not None:
            self.memory_hits += 1
            return cached
        result = self._load_disk(key)
        if result is not None:
            self.disk_hits += 1
            return result
        self.misses += 1
        return None

    def peek(self, key: str) -> SimResult | None:
        """Key-only lookup that never counts as a hit or miss.

        The federated-cache ``lookup`` protocol op answers peers from
        here: peers carry content keys, not job specs, and a peer's
        probe must not skew this shard's own hit/miss accounting.
        """
        cached = self._memory.get(key)
        if cached is not None:
            return cached
        return self._load_disk(key)

    def _load_disk(self, key: str) -> SimResult | None:
        """Read one entry from the disk layer into memory (or ``None``)."""
        if self.directory is None:
            return None
        path = self._path(key)
        if not path.is_file():
            return None
        try:
            with profiling.phase("result-cache-io"):
                entry = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if entry.get("version") != CACHE_FORMAT_VERSION:
            return None
        result = SimResult.from_dict(entry["result"])
        self._memory[key] = result
        return result

    def put_memory(self, job: SimJob, result: SimResult) -> None:
        """Store in the in-process layer only (no disk write).

        For results that already live durably elsewhere — e.g. campaign
        journal entries replayed on resume — where re-persisting every
        entry per invocation would be pure disk churn.
        """
        self._memory[job.content_key()] = result

    def seed(self, key: str, result: SimResult) -> None:
        """Insert a result under a precomputed content key (memory only).

        For journal replay, where the key was persisted alongside the
        result and recomputing it would need a materialised job.  An
        existing entry wins: the cache's copy is never downgraded.
        """
        self._memory.setdefault(key, result)

    def put(self, job: SimJob, result: SimResult) -> None:
        key = job.content_key()
        self._memory[key] = result
        self.stores += 1
        if self.directory is None:
            return
        entry = {
            "version": CACHE_FORMAT_VERSION,
            "key": key,
            "job": job.to_dict(),
            "result": result.to_dict(),
        }
        # A failed persist must never kill a simulation run: the result is
        # already in the memory layer, the disk copy is an optimisation.
        # TypeError/ValueError cover results whose ``extra`` dict holds
        # values json can't encode.
        try:
            with profiling.phase("result-cache-io"):
                path = self._path(key)
                path.parent.mkdir(parents=True, exist_ok=True)
                atomic_write_text(
                    path, json.dumps(entry, sort_keys=True, indent=1),
                    site="cache.write",
                )
        except (OSError, TypeError, ValueError):
            self.write_failures += 1

    # -- maintenance ----------------------------------------------------

    def disk_entries(self) -> list[Path]:
        if self.directory is None or not self.directory.is_dir():
            return []
        return sorted(self.directory.glob("??/*.json"))

    def clear(self, disk: bool = True) -> int:
        """Drop the memory layer and (optionally) every disk entry.

        Also sweeps ``*.tmp.*`` files orphaned by interrupted writes.
        Returns the number of disk entries removed.
        """
        self._memory.clear()
        removed = 0
        if disk:
            for path in self.disk_entries():
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
            if self.directory is not None and self.directory.is_dir():
                for orphan in self.directory.glob("??/*.tmp.*"):
                    try:
                        orphan.unlink()
                    except OSError:
                        pass
        return removed

    def stats(self) -> dict:
        return {
            "directory": str(self.directory) if self.directory else None,
            "memory_entries": len(self._memory),
            "disk_entries": len(self.disk_entries()),
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "write_failures": self.write_failures,
        }
