"""Unified experiment engine (see DESIGN.md, "Experiment engine").

Declarative :class:`~repro.engine.job.SimJob` specs, pluggable executors
(serial / multiprocessing pool, selected by ``REPRO_JOBS``), a persistent
result cache (``REPRO_CACHE_DIR``) and the batch API every experiment
driver runs on.
"""

from repro.engine.api import (
    Engine,
    configure_default_engine,
    default_engine,
    reset_default_engine,
    run_grid,
    run_job,
    run_jobs,
)
from repro.engine.cache import CACHE_DIR_ENV, ResultCache, default_cache_dir
from repro.engine.campaign import (
    AxisBlock,
    CampaignEvent,
    CampaignResult,
    CampaignSpec,
    run_campaign,
)
from repro.engine.checkpoint import CampaignJournal, JournalError, JournalHeader
from repro.engine.executors import (
    JOBS_ENV,
    PoolExecutor,
    SerialExecutor,
    make_executor,
    resolve_jobs,
)
from repro.engine.job import (
    DEFAULT_MEASURE,
    DEFAULT_WARMUP,
    SimJob,
    execute_job,
    reset_run_count,
    run_count,
)

__all__ = [
    "AxisBlock",
    "CACHE_DIR_ENV",
    "CampaignEvent",
    "CampaignJournal",
    "CampaignResult",
    "CampaignSpec",
    "DEFAULT_MEASURE",
    "DEFAULT_WARMUP",
    "Engine",
    "JournalError",
    "JournalHeader",
    "JOBS_ENV",
    "PoolExecutor",
    "ResultCache",
    "SerialExecutor",
    "SimJob",
    "configure_default_engine",
    "default_cache_dir",
    "default_engine",
    "execute_job",
    "make_executor",
    "reset_default_engine",
    "reset_run_count",
    "resolve_jobs",
    "run_campaign",
    "run_count",
    "run_grid",
    "run_job",
    "run_jobs",
]
