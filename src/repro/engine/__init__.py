"""Unified experiment engine (see DESIGN.md, "Experiment engine").

Declarative :class:`~repro.engine.job.SimJob` specs, pluggable executors
(serial / multiprocessing pool, selected by ``REPRO_JOBS``), a persistent
result cache (``REPRO_CACHE_DIR``) and the batch API every experiment
driver runs on.
"""

from repro.engine.api import (
    Engine,
    configure_default_engine,
    default_engine,
    reset_default_engine,
    run_grid,
    run_job,
    run_jobs,
    set_default_engine,
)
from repro.engine.cache import CACHE_DIR_ENV, ResultCache, default_cache_dir
from repro.engine.campaign import (
    AxisBlock,
    CampaignEvent,
    CampaignResult,
    CampaignSpec,
    engine_for_backend,
    run_campaign,
)
from repro.engine.checkpoint import CampaignJournal, JournalError, JournalHeader
from repro.engine.client import (
    RetryPolicy,
    ServiceClient,
    ServiceError,
    ServiceExecutor,
    ServiceOverloaded,
    ServiceTimeout,
    ServiceUnavailable,
    service_engine,
    service_running,
    wait_for_service,
)
from repro.engine.faults import (
    FaultPlan,
    FaultRule,
    FaultSpecError,
    InjectedFault,
    install_plan,
)
from repro.engine.executors import (
    JOBS_ENV,
    PoolExecutor,
    SerialExecutor,
    make_executor,
    resolve_jobs,
)
from repro.engine.job import (
    DEFAULT_MEASURE,
    DEFAULT_WARMUP,
    SimJob,
    execute_job,
    reset_run_count,
    run_count,
)
from repro.engine.queue import (
    JobFailed,
    JobQueue,
    QueueOverloaded,
    QueueStats,
    WorkerPool,
)
from repro.engine.service import SOCKET_ENV, SimService, run_service

__all__ = [
    "AxisBlock",
    "CACHE_DIR_ENV",
    "CampaignEvent",
    "CampaignJournal",
    "CampaignResult",
    "CampaignSpec",
    "DEFAULT_MEASURE",
    "DEFAULT_WARMUP",
    "Engine",
    "FaultPlan",
    "FaultRule",
    "FaultSpecError",
    "InjectedFault",
    "JobFailed",
    "JobQueue",
    "JournalError",
    "JournalHeader",
    "JOBS_ENV",
    "PoolExecutor",
    "QueueOverloaded",
    "QueueStats",
    "ResultCache",
    "RetryPolicy",
    "SOCKET_ENV",
    "SerialExecutor",
    "ServiceClient",
    "ServiceError",
    "ServiceExecutor",
    "ServiceOverloaded",
    "ServiceTimeout",
    "ServiceUnavailable",
    "SimJob",
    "SimService",
    "WorkerPool",
    "install_plan",
    "configure_default_engine",
    "default_cache_dir",
    "default_engine",
    "engine_for_backend",
    "execute_job",
    "make_executor",
    "reset_default_engine",
    "reset_run_count",
    "resolve_jobs",
    "run_campaign",
    "run_count",
    "run_grid",
    "run_service",
    "service_engine",
    "set_default_engine",
    "service_running",
    "wait_for_service",
    "run_job",
    "run_jobs",
]
