"""Journaled campaign checkpoints: crash-safe resume for long sweeps.

A :class:`CampaignJournal` is an append-only JSONL file that records every
completed job of one campaign:

* line 1 — a header ``{"format": 1, "campaign": <name>, "key": <digest>,
  "total": <n>}`` identifying the exact job set (the ``key`` is a digest
  over the campaign's unique job content keys, so a journal can never be
  replayed against a different sweep by accident);
* every further line — ``{"key": <job content key>, "job": {...},
  "result": {...}}`` for one completed simulation, or a ``{"meta":
  {...}}`` annotation record (the service journal uses these to persist
  its cluster identity: ring address and membership epoch).

Each record is written with ``flush`` + ``fsync`` before the campaign
moves on, so after a kill (``SIGKILL`` included) the journal holds every
job that finished, possibly followed by one torn half-line.  Loading
tolerates exactly the damage a crash can cause:

* a **torn final line** (no newline / truncated JSON) is dropped, and the
  file is truncated back to the last intact line before appending resumes;
* a **corrupt interior line** is skipped and counted — only that one job
  re-runs on resume;
* a file whose **header is unreadable** is rotated aside to
  ``<name>.corrupt`` and the campaign starts a fresh journal.

Job identity is the engine's :meth:`~repro.engine.job.SimJob.content_key`
— the *same* key the result cache uses — so the journal, the in-memory
dedupe and the persistent cache always agree on what "the same job" means
(pinned by a regression test in ``tests/unit/test_campaign.py``).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

from repro.engine import faults
from repro.engine.job import SimJob
from repro.pipeline.result import SimResult

#: Journal line format; bump on incompatible layout changes.
JOURNAL_FORMAT_VERSION = 1

#: Environment variable with the default campaign checkpoint directory.
CHECKPOINT_DIR_ENV = "REPRO_CHECKPOINT_DIR"


def default_checkpoint_dir() -> Path | None:
    """Resolve the default journal directory (None = no checkpointing)."""
    raw = os.environ.get(CHECKPOINT_DIR_ENV, "").strip()
    return Path(raw) if raw else None


class JournalError(RuntimeError):
    """The journal on disk belongs to a different campaign."""


@dataclass(frozen=True)
class JournalHeader:
    """First line of a journal: which campaign this checkpoint belongs to."""

    campaign: str
    key: str
    total: int
    version: int = JOURNAL_FORMAT_VERSION

    def to_line(self) -> str:
        payload = {
            "format": self.version,
            "campaign": self.campaign,
            "key": self.key,
            "total": self.total,
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_payload(cls, payload: dict) -> "JournalHeader | None":
        try:
            return cls(
                campaign=str(payload["campaign"]),
                key=str(payload["key"]),
                total=int(payload["total"]),
                version=int(payload["format"]),
            )
        except (KeyError, TypeError, ValueError):
            return None


class CampaignJournal:
    """Append-only JSONL checkpoint of one campaign's completed jobs.

    Construction loads whatever is already on disk (tolerating crash
    damage, see module docstring); :meth:`open` then binds the journal to
    a specific campaign header — validating a pre-existing file against it
    — and readies the append handle.  :meth:`record` persists one result
    durably before returning.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self.header: JournalHeader | None = None
        self.entries: dict[str, SimResult] = {}
        #: Annotation records (``{"meta": {...}}`` lines) in file order —
        #: the service journal stores its shard address and membership
        #: epoch here, so a restarted shard resumes with a higher epoch.
        self.meta: list[dict] = []
        self.corrupt_lines = 0
        #: Byte offset of the end of the last intact line; the safe
        #: truncation point before appending after a crash.
        self._good_end = 0
        self._fh = None
        if self.path.exists():
            self._load()

    # -- loading ---------------------------------------------------------

    def _load(self) -> None:
        data = self.path.read_bytes()
        self._good_end = len(data)
        if data and not data.endswith(b"\n"):
            # Torn final line: a write was cut mid-record by a kill.
            torn = data.rfind(b"\n") + 1
            self.corrupt_lines += 1
            self._good_end = torn
            data = data[:torn]
        for raw in data.splitlines():
            if not raw.strip():
                continue
            try:
                payload = json.loads(raw)
                if not isinstance(payload, dict):
                    raise ValueError("journal line is not an object")
            except ValueError:
                self.corrupt_lines += 1
                continue
            if self.header is None:
                self.header = JournalHeader.from_payload(payload)
                if self.header is None:
                    # Unreadable header: nothing below can be trusted to
                    # belong to any particular campaign.
                    self.corrupt_lines += 1
                continue
            if isinstance(payload.get("meta"), dict):
                self.meta.append(payload["meta"])
                continue
            try:
                key = payload["key"]
                result = SimResult.from_dict(payload["result"])
            except (KeyError, TypeError, ValueError):
                self.corrupt_lines += 1
                continue
            self.entries[key] = result

    @property
    def done(self) -> int:
        return len(self.entries)

    def describe(self) -> dict:
        """Status view (used by ``repro campaign status``)."""
        return {
            "path": str(self.path),
            "campaign": self.header.campaign if self.header else None,
            "key": self.header.key if self.header else None,
            "total": self.header.total if self.header else None,
            "done": self.done,
            "corrupt_lines": self.corrupt_lines,
        }

    # -- writing ---------------------------------------------------------

    def open(self, header: JournalHeader, *, force: bool = False) -> None:
        """Bind the journal to *header* and ready it for appends.

        A pre-existing journal must carry the same campaign ``key``;
        otherwise :class:`JournalError` is raised (or, with ``force``, the
        stale file is rotated to ``*.bak`` and a fresh journal starts).  A
        file whose header could not be parsed at all is rotated to
        ``*.corrupt`` automatically — its entries were never trustworthy.
        """
        if self._fh is not None:
            return
        if self.path.exists() and self.header is None:
            self._rotate(".corrupt")
        elif self.header is not None and self.header.key != header.key:
            if not force:
                raise JournalError(
                    f"{self.path} belongs to campaign "
                    f"{self.header.campaign!r} (key {self.header.key[:12]}…, "
                    f"{self.done}/{self.header.total} done), not to "
                    f"{header.campaign!r}; pass force=True / --force to "
                    "rotate it aside and start over"
                )
            self._rotate(".bak")
        self.header = header
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self.path.exists():
            # Resume: drop any torn tail, then append.
            self._fh = open(self.path, "r+b")
            self._lock()
            self._fh.seek(self._good_end)
            self._fh.truncate()
        else:
            self._fh = open(self.path, "wb")
            self._lock()
            self._fh.write((header.to_line() + "\n").encode())
            self._sync()

    def _lock(self) -> None:
        """Enforce one writer per journal (advisory, released on close).

        Truncate-then-append from two processes would interleave writes at
        overlapping offsets and destroy fsynced records, so a concurrent
        open is an error, not a race to tolerate.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX platforms
            return
        try:
            fcntl.flock(self._fh.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            self._fh.close()
            self._fh = None
            raise JournalError(
                f"{self.path} is already being written by another process; "
                "wait for that campaign to finish (or kill it) before "
                "resuming"
            ) from None

    def _rotate(self, suffix: str) -> None:
        target = self.path.with_name(self.path.name + suffix)
        n = 1
        while target.exists():
            # Never clobber an earlier backup: those are completed results.
            n += 1
            target = self.path.with_name(f"{self.path.name}{suffix}{n}")
        os.replace(self.path, target)
        self.entries.clear()
        self.meta.clear()
        self.header = None
        self.corrupt_lines = 0
        self._good_end = 0

    def record(self, job: SimJob, result: SimResult) -> None:
        """Durably append one completed job (flush + fsync before return).

        Raises :class:`OSError` when the append fails — including under
        the ``journal.write`` fault site, whose ``torn`` action writes
        half the record and stops (exactly what a kill mid-append leaves
        behind; the loader's torn-tail handling recovers it) and whose
        ``fsync`` action fails after the buffered write (the record may
        or may not be durable; replay is idempotent either way).  The
        caller decides whether a failed append is fatal (campaigns) or a
        degraded-mode flag (the service, which still holds the result in
        its cache).
        """
        assert self._fh is not None, "open() the journal before recording"
        key = job.content_key()
        line = json.dumps(
            {"key": key, "job": job.to_dict(), "result": result.to_dict()},
            sort_keys=True,
            separators=(",", ":"),
        )
        data = (line + "\n").encode()
        rule = faults.fire("journal.write")
        if rule is not None and rule.action == "torn":
            self._fh.write(data[:max(1, len(data) // 2)])
            self._fh.flush()
            raise faults.io_error(rule, "journal.write")
        self._fh.write(data)
        if rule is not None and rule.action == "fsync":
            self._fh.flush()
            raise faults.io_error(rule, "journal.write")
        self._sync()
        self.entries[key] = result

    def record_meta(self, payload: dict) -> None:
        """Durably append one ``{"meta": {...}}`` annotation record.

        Meta records ride the same fsync-per-line discipline as job
        records but carry no result — the service journal uses them to
        persist the shard's ring address and membership epoch.  Loaders
        that predate meta records counted these lines as corrupt (and
        skipped them), so old readers degrade instead of breaking.
        """
        assert self._fh is not None, "open() the journal before recording"
        line = json.dumps({"meta": dict(payload)}, sort_keys=True,
                          separators=(",", ":"))
        self._fh.write((line + "\n").encode())
        self._sync()
        self.meta.append(dict(payload))

    def _sync(self) -> None:
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_journal_snapshot(path: str | os.PathLike) -> dict:
    """Tolerantly read another process's journal without locking it.

    This is the cluster failover-replay primitive: a surviving shard
    reads a dead sibling's service journal to seed the completed work it
    is inheriting, so it must never take the writer flock (the owner may
    be mid-revival) and must treat *any* damage as fewer entries, never
    an error.  Returns ``{"header", "meta", "entries", "records",
    "corrupt"}`` where ``entries`` maps content key to
    :class:`~repro.pipeline.result.SimResult`, ``records`` counts job
    record lines (duplicates included — the re-simulation accounting the
    soak harness sums), and ``meta`` is the annotation list in file
    order.

    The ``journal.replay`` fault site fires here: its ``torn`` action
    halves the byte stream *in memory* before parsing — the on-disk file
    is never touched (its owner may come back for it), but the reader
    exercises exactly the torn-tail shape a crash leaves behind.
    """
    snapshot: dict = {"header": None, "meta": [], "entries": {},
                      "records": 0, "corrupt": 0}
    try:
        data = Path(path).read_bytes()
    except OSError:
        snapshot["corrupt"] += 1
        return snapshot
    rule = faults.fire("journal.replay")
    if rule is not None and rule.action == "torn":
        data = data[:max(1, len(data) // 2)]
    if data and not data.endswith(b"\n"):
        torn = data.rfind(b"\n") + 1
        snapshot["corrupt"] += 1
        data = data[:torn]
    for raw in data.splitlines():
        if not raw.strip():
            continue
        try:
            payload = json.loads(raw)
            if not isinstance(payload, dict):
                raise ValueError("journal line is not an object")
        except ValueError:
            snapshot["corrupt"] += 1
            continue
        if snapshot["header"] is None:
            snapshot["header"] = JournalHeader.from_payload(payload)
            if snapshot["header"] is None:
                snapshot["corrupt"] += 1
            continue
        if isinstance(payload.get("meta"), dict):
            snapshot["meta"].append(payload["meta"])
            continue
        try:
            key = payload["key"]
            result = SimResult.from_dict(payload["result"])
        except (KeyError, TypeError, ValueError):
            snapshot["corrupt"] += 1
            continue
        snapshot["records"] += 1
        snapshot["entries"][key] = result
    return snapshot
