"""Pluggable job executors: serial and multiprocessing pool.

Both backends map :func:`~repro.engine.job.execute_job` over a job list and
preserve input order.  Because a job spec fully determines its simulation
(seeded traces, no wall-clock anywhere in the model) and results round-trip
losslessly through ``SimResult.to_dict``/``from_dict``, the two backends
are bit-identical — the equivalence test in
``tests/unit/test_engine.py`` pins that guarantee.

The default backend is picked from the ``REPRO_JOBS`` environment variable
(or an explicit ``--jobs`` flag further up): ``<= 1`` means serial,
anything larger a pool of that many worker processes.
"""

from __future__ import annotations

import multiprocessing
import os

from repro.engine import faults
from repro.engine.job import SimJob, execute_job
from repro.engine.shm import SharedTraceRegistry, adopt_shared_trace, shm_enabled
from repro.pipeline.result import SimResult

#: Environment variable selecting the default parallelism.
JOBS_ENV = "REPRO_JOBS"

#: Upper clamp for the worker count: a typo'd ``REPRO_JOBS=1000000`` must
#: not fork a million processes.  Far above any sane machine, far below
#: any fork bomb.
MAX_JOBS = 512


class SerialExecutor:
    """Run jobs one after the other in the current process."""

    jobs = 1

    def run(self, jobs: list[SimJob]) -> list[SimResult]:
        return [execute_job(job) for job in jobs]

    def describe(self) -> str:
        return "serial"


def _execute_shared_to_dict(item: tuple[SimJob, dict | None]) -> dict:
    """Worker entry point with an optional shared-trace spec.

    When the parent shipped the job's trace over the shared-memory plane,
    adopt it into the local trace cache first so ``execute_job`` skips the
    generator; adoption failure just falls back to a local build.

    Chaos: the ``worker.execute`` site fires here too, but with
    ``allow_fatal=False`` — a ``multiprocessing.Pool`` cannot survive a
    dead worker (``pool.map`` would raise for the whole batch), so
    ``crash``/``hang`` directives degrade to a raised error.  The
    persistent service pool (:mod:`repro.engine.queue`) is where fatal
    worker faults are exercised for real.
    """
    job, trace_spec = item
    rule = faults.fire("worker.execute")
    if rule is not None:
        faults.apply_worker_fault({"action": rule.action, "arg": rule.arg},
                                  allow_fatal=False)
    if trace_spec is not None:
        adopt_shared_trace(trace_spec)
    return execute_job(job).to_dict()


class PoolExecutor:
    """Run jobs on a ``multiprocessing`` pool of worker processes.

    Results travel back as ``to_dict()`` payloads and are rebuilt in the
    parent, so the transport is exactly the round-trip the unit tests pin
    as lossless.  ``chunksize=1`` keeps scheduling fair when job costs vary
    by orders of magnitude (oracle vs hybrid predictors).

    Unless ``REPRO_SHM`` disables it, the parent materialises each unique
    trace once (in-process cache → trace store → generator) and fans it
    out to the workers through shared memory
    (:mod:`repro.engine.shm`), instead of every worker re-running the
    generator for every distinct trace its jobs touch.
    """

    def __init__(self, jobs: int):
        if jobs < 2:
            raise ValueError("PoolExecutor needs >= 2 workers; use SerialExecutor")
        self.jobs = int(jobs)

    def run(self, jobs: list[SimJob]) -> list[SimResult]:
        if not jobs:
            return []
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        workers = min(self.jobs, len(jobs))
        if workers < 2:
            return SerialExecutor().run(jobs)
        registry = SharedTraceRegistry() if shm_enabled() else None
        try:
            items: list[tuple[SimJob, dict | None]] = []
            if registry is not None:
                specs: dict[tuple, dict | None] = {}
                for job in jobs:
                    ident = (job.workload, job.warmup + job.n_uops, job.seed)
                    if ident not in specs:
                        leased = registry.lease(*ident)
                        specs[ident] = leased[1] if leased else None
                    items.append((job, specs[ident]))
            else:
                items = [(job, None) for job in jobs]
            with ctx.Pool(processes=workers) as pool:
                payloads = pool.map(_execute_shared_to_dict, items,
                                    chunksize=1)
        finally:
            if registry is not None:
                registry.close()
        return [SimResult.from_dict(payload) for payload in payloads]

    def describe(self) -> str:
        return f"pool({self.jobs})"


def _coerce_jobs(value) -> int | None:
    """Best-effort integer coercion; ``None`` when the value is unusable.

    Accepts ints, numeric strings and float spellings (``"4.0"``) —
    environment variables arrive as text from shells, Makefiles and CI
    matrices, and a sloppy spelling should degrade, not crash.
    """
    try:
        return int(value)
    except (TypeError, ValueError):
        pass
    try:
        return int(float(value))
    except (TypeError, ValueError, OverflowError):
        return None


def resolve_jobs(jobs: int | None = None) -> int:
    """Pick the parallelism: explicit value wins, then ``REPRO_JOBS``.

    Bad values clamp instead of crashing: non-numeric input falls
    through (explicit → environment → 1), values below 1 clamp to 1
    (serial), and anything above :data:`MAX_JOBS` clamps to
    :data:`MAX_JOBS`.
    """
    for candidate in (jobs, os.environ.get(JOBS_ENV, "").strip() or None):
        if candidate is None:
            continue
        n = _coerce_jobs(candidate)
        if n is not None:
            return min(MAX_JOBS, max(1, n))
    return 1


def make_executor(jobs: int | None = None) -> SerialExecutor | PoolExecutor:
    """Build the executor :func:`resolve_jobs` selects for *jobs*."""
    n = resolve_jobs(jobs)
    return SerialExecutor() if n <= 1 else PoolExecutor(n)
