"""Client side of the simulation service protocol.

A :class:`ServiceClient` speaks the newline-JSON protocol of
:mod:`repro.engine.service` over one persistent connection:
``ping``/``status``/``submit``/``results``/``shutdown`` methods mirror
the server ops one-to-one, and :meth:`ServiceClient.run_jobs` gives the
engine-shaped "batch in, results in submission order out" call.  The
target is a Unix socket path by default; a ``tcp://host:port`` address
connects to a TCP daemon (a cluster shard) instead — the prefix is
mandatory for TCP because a bare ``host:port`` string is also a legal
socket *path*.  TCP daemons usually require the shared-secret token
(``token=`` / ``$REPRO_SERVICE_TOKEN``), which the client attaches to
every request; a rejection is the non-retryable
:class:`ServiceAuthError` (a corrected token needs a new client call,
resending the same one cannot succeed).

Two adapters make the service a drop-in **backend** for existing code:

* :class:`ServiceExecutor` quacks like the engine's executors (``run``,
  ``jobs``, ``describe``), so an :class:`~repro.engine.api.Engine` built
  on it routes every batch to the daemon;
* :func:`service_engine` builds exactly that engine (with a memory-only
  local cache), which is what ``repro campaign run --backend service``
  uses — the campaign/checkpoint machinery is unchanged, only the
  executor is remote.

The client is deliberately synchronous (plain ``socket``): callers are
CLI commands, tests and campaign loops, none of which run an event loop.

Failure handling (the chaos suite's client half):

* every socket read/write carries a **deadline** — the explicit
  ``timeout`` argument, else ``$REPRO_CLIENT_TIMEOUT``, else
  :data:`DEFAULT_TIMEOUT` — so a daemon that accepts the connection and
  then dies (or stalls mid-response) costs a typed
  :class:`ServiceTimeout`, never an indefinite hang;
* failures are **typed**: :class:`ServiceUnavailable` (no daemon /
  connection lost), :class:`ServiceTimeout` (deadline exceeded),
  :class:`ServiceOverloaded` (explicit backpressure) — all under
  :class:`ServiceError`, so existing ``except ServiceError`` callers
  keep working;
* :meth:`ServiceClient.run_jobs` retries those three transparently
  under a :class:`RetryPolicy` (exponential backoff, deterministic
  jitter).  Resubmission is **idempotent by construction**: jobs are
  identified server-side by content key, so a batch resubmitted after a
  lost response coalesces onto the in-flight work or hits the cache —
  the simulation never runs twice.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import time
from dataclasses import dataclass

from repro.engine.job import SimJob
from repro.pipeline.result import SimResult

#: Environment variable overriding the default client deadline (seconds).
CLIENT_TIMEOUT_ENV = "REPRO_CLIENT_TIMEOUT"

#: Default per-read socket deadline.  Generous — a ``wait=True`` submit
#: legitimately blocks for the whole batch — but finite, so a dead
#: daemon is a typed error instead of a forever-hang.
DEFAULT_TIMEOUT = 300.0


class ServiceError(RuntimeError):
    """The daemon rejected a request or the connection failed."""


class ServiceUnavailable(ServiceError):
    """No daemon is reachable (connect refused, or connection lost)."""


class ServiceTimeout(ServiceError):
    """The daemon did not answer within the client deadline."""


class ServiceOverloaded(ServiceError):
    """The daemon's admission control rejected the batch (backpressure)."""


class ServiceAuthError(ServiceError):
    """The daemon rejected the request's auth token (not retryable)."""


def resolve_client_timeout(explicit: float | None = None) -> float | None:
    """The client deadline: explicit, else env, else the default.

    An explicit ``0`` (or a ``0`` in the env) disables the deadline
    entirely — for debuggers and humans who really do want to wait.
    """
    if explicit is not None:
        return explicit if explicit > 0 else None
    raw = os.environ.get(CLIENT_TIMEOUT_ENV, "").strip()
    if raw:
        try:
            value = float(raw)
        except ValueError:
            return DEFAULT_TIMEOUT
        return value if value > 0 else None
    return DEFAULT_TIMEOUT


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic jitter.

    ``delay(attempt)`` grows ``base * 2**attempt`` up to ``cap``, plus a
    jitter fraction derived by hashing ``(seed, attempt)`` — spreading
    simultaneous retriers without wall-clock or global RNG, in keeping
    with the fault plane's determinism rules.  ``attempts`` counts
    *total* tries (1 = no retries).
    """

    attempts: int = 4
    base: float = 0.05
    cap: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def delay(self, attempt: int) -> float:
        """Seconds to sleep after failed try *attempt* (0-based)."""
        raw = min(self.cap, self.base * (2 ** attempt))
        digest = hashlib.sha256(f"{self.seed}:{attempt}".encode()).digest()
        frac = int.from_bytes(digest[:8], "big") / 2**64
        return raw * (1.0 + self.jitter * frac)


class ServiceClient:
    """One connection to a running :class:`~repro.engine.service.SimService`.

    Usable as a context manager; the connection opens lazily on first
    request and pipelines any number of request/response rounds.
    """

    def __init__(self, socket_path: str | os.PathLike | None = None,
                 timeout: float | None = None,
                 retry: RetryPolicy | None = None,
                 token: str | None = None):
        # Imported here, not at module top, to keep the client importable
        # without dragging in the asyncio server machinery's dependencies.
        from repro.engine.service import (
            default_socket_path,
            parse_address,
            resolve_service_token,
        )

        if socket_path is not None and str(socket_path).startswith("tcp://"):
            self._target = parse_address(socket_path)
            #: Display/identity form of the target — a path for Unix
            #: daemons, ``tcp://host:port`` for shards.  The attribute
            #: keeps its historical name; every existing caller only
            #: ever formats it into messages.
            self.socket_path = str(socket_path)
        else:
            self.socket_path = default_socket_path(socket_path)
            self._target = ("unix", str(self.socket_path))
        self.timeout = resolve_client_timeout(timeout)
        self.token = resolve_service_token(token)
        #: Policy :meth:`run_jobs` retries transient failures under
        #: (``None`` disables retries; requests themselves never retry —
        #: only the idempotent batch call does).
        self.retry = retry if retry is not None else RetryPolicy()
        self._sock: socket.socket | None = None
        self._file = None

    # -- connection ------------------------------------------------------

    def connect(self) -> None:
        if self._sock is not None:
            return
        sock = None
        try:
            if self._target[0] == "tcp":
                sock = socket.create_connection(
                    (self._target[1], self._target[2]), timeout=self.timeout)
                sock.settimeout(self.timeout)
                # One request per line: latency beats Nagle batching.
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            else:
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(self.timeout)
                sock.connect(self._target[1])
        except OSError as exc:
            if sock is not None:
                sock.close()
            raise ServiceUnavailable(
                f"cannot reach the repro service at {self.socket_path} "
                f"({exc}); is `repro serve` running?"
            ) from None
        self._sock = sock
        self._file = sock.makefile("rwb")

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        self.connect()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def request(self, payload: dict) -> dict:
        """One protocol round; raises a typed :class:`ServiceError` on
        failure.

        Distinguishes the three transient shapes :meth:`run_jobs`
        retries: a deadline expiry is :class:`ServiceTimeout`, a dead or
        severed connection is :class:`ServiceUnavailable` (this also
        covers a response cut off mid-line — a partial line with no
        newline terminator *is* a closed connection by the time
        ``readline`` returns), and an ``overloaded`` response is
        :class:`ServiceOverloaded`.  Anything else the daemon refuses
        stays a plain :class:`ServiceError` (not retryable: resubmitting
        a malformed request can never help); an ``auth`` rejection is the
        equally non-retryable :class:`ServiceAuthError`.
        """
        self.connect()
        if self.token is not None and "token" not in payload:
            payload = dict(payload, token=self.token)
        try:
            self._file.write((json.dumps(payload) + "\n").encode())
            self._file.flush()
            line = self._file.readline()
        except socket.timeout:
            self.close()
            raise ServiceTimeout(
                f"no response from the repro service at {self.socket_path} "
                f"within {self.timeout:g}s"
            ) from None
        except OSError as exc:
            self.close()
            raise ServiceUnavailable(
                f"service connection lost: {exc}") from None
        if not line or not line.endswith(b"\n"):
            # Empty read: daemon closed cleanly.  Unterminated line: the
            # connection died mid-response (e.g. a torn write) — either
            # way the response is unusable and the connection is dead.
            self.close()
            raise ServiceUnavailable(
                "service closed the connection"
                + (" mid-response" if line else ""))
        try:
            response = json.loads(line)
        except ValueError as exc:
            raise ServiceError(f"bad response from service: {exc}") from None
        if not response.get("ok"):
            if response.get("overloaded"):
                raise ServiceOverloaded(
                    response.get("error", "service overloaded"))
            if response.get("auth"):
                raise ServiceAuthError(
                    response.get("error", "service authentication failed"))
            raise ServiceError(response.get("error", "unknown service error"))
        return response

    # -- ops -------------------------------------------------------------

    def ping(self) -> dict:
        """Server identity: pid, protocol version, worker count.

        Raises :class:`ServiceError` when the daemon speaks a different
        protocol version — better one clean error here than mis-decoded
        payloads later.
        """
        from repro.engine.service import PROTOCOL_VERSION

        server = self.request({"op": "ping"})["server"]
        if server.get("protocol") != PROTOCOL_VERSION:
            raise ServiceError(
                f"service at {self.socket_path} speaks protocol "
                f"v{server.get('protocol')}, this client v{PROTOCOL_VERSION}; "
                "upgrade the older side"
            )
        return server

    def status(self) -> dict:
        """Queue / cache / journal / ticket status snapshot."""
        return self.request({"op": "status"})

    def submit(self, jobs: list[SimJob], *, wait: bool = True) -> dict:
        """Submit a batch; the raw response (``results`` when *wait*)."""
        return self.request({
            "op": "submit",
            "jobs": [job.to_dict() for job in jobs],
            "wait": wait,
        })

    def results(self, ticket: int) -> dict:
        """Poll a ticket from a ``wait=False`` submission."""
        return self.request({"op": "results", "ticket": ticket})

    def shutdown(self) -> None:
        """Ask the daemon to exit (acknowledged before it stops)."""
        self.request({"op": "shutdown"})

    def health(self) -> dict:
        """The daemon's liveness/degradation snapshot (``health`` op)."""
        return self.request({"op": "health"})["health"]

    def chaos(self) -> dict | None:
        """The active fault plan of a ``--chaos`` daemon (``chaos`` op)."""
        return self.request({"op": "chaos"})["plan"]

    def metrics(self) -> dict:
        """The daemon's flat ops-surface snapshot (``metrics`` op)."""
        return self.request({"op": "metrics"})["metrics"]

    def gossip(self, view: dict | None = None) -> dict:
        """Exchange membership views with the daemon (``gossip`` op).

        Sends *view* (a :meth:`MembershipView.to_dict
        <repro.engine.cluster.MembershipView.to_dict>` payload, or
        nothing to just read) and returns the daemon's response — its
        merged view plus its own ``(epoch, beat)`` identity.  Routers
        poll this to converge on the fleet's membership.
        """
        payload: dict = {"op": "gossip"}
        if view is not None:
            payload["view"] = view
        return self.request(payload)

    def seed(self, entries: dict) -> int:
        """Push results into the daemon's cache (``seed`` op).

        *entries* maps content key to ``SimResult.to_dict()`` payloads
        (the warm-push wire form).  Returns how many the daemon accepted;
        keys it already holds count as accepted but are not overwritten.
        """
        response = self.request({"op": "seed", "entries": dict(entries)})
        return int(response.get("seeded", 0))

    def lookup(self, keys: list[str]) -> dict:
        """Probe the daemon's cache by content key (``lookup`` op).

        Returns ``{key: SimResult}`` for the keys it holds.  This is the
        federation primitive — shards call it on each other — but it is
        also handy for tests asserting *where* a result is cached.
        """
        found = self.request({"op": "lookup", "keys": list(keys)})["found"]
        return {key: SimResult.from_dict(raw) for key, raw in found.items()}

    def run_jobs(self, jobs: list[SimJob]) -> list[SimResult]:
        """Submit, wait, and decode: the engine-shaped batch call.

        Transient failures — the daemon unreachable, the response lost
        or timed out, the queue shedding load — are retried under
        :attr:`retry` with exponential backoff.  The resubmitted batch
        is byte-identical, and the daemon identifies jobs by content
        key, so a retry after a lost response attaches to the already
        in-flight simulations (or their cached results) rather than
        re-running anything: at-least-once delivery, exactly-once
        execution.
        """
        policy = self.retry
        attempts = policy.attempts if policy is not None else 1
        for attempt in range(attempts):
            try:
                response = self.submit(jobs, wait=True)
                return [SimResult.from_dict(raw)
                        for raw in response["results"]]
            except (ServiceUnavailable, ServiceTimeout,
                    ServiceOverloaded):
                self.close()  # reconnect fresh on the next try
                if attempt + 1 >= attempts:
                    raise
                time.sleep(policy.delay(attempt))
        raise AssertionError("unreachable")  # pragma: no cover


def service_running(socket_path: str | os.PathLike | None = None,
                    token: str | None = None) -> bool:
    """True when a daemon answers ``ping`` on *socket_path*."""
    try:
        with ServiceClient(socket_path, timeout=1.0, token=token) as client:
            client.ping()
        return True
    except ServiceError:
        return False


def wait_for_service(socket_path: str | os.PathLike | None = None,
                     timeout: float = 10.0,
                     token: str | None = None) -> None:
    """Block until a daemon answers ``ping`` (for launchers and tests)."""
    deadline = time.monotonic() + timeout
    while True:
        if service_running(socket_path, token=token):
            return
        if time.monotonic() >= deadline:
            raise ServiceError(
                f"no repro service appeared at "
                f"{socket_path if socket_path else 'the default socket'} "
                f"within {timeout:.0f}s"
            )
        time.sleep(0.05)


class ServiceExecutor:
    """Executor backend that ships batches to a running daemon.

    Mirrors the :class:`~repro.engine.executors.SerialExecutor` /
    :class:`~repro.engine.executors.PoolExecutor` interface (``run``,
    ``jobs``, ``describe``) so it can sit inside an ordinary
    :class:`~repro.engine.api.Engine`.  ``jobs`` reports the *daemon's*
    worker count — campaign chunk sizing then matches the real pool.
    """

    def __init__(self, client: ServiceClient):
        self.client = client
        self.jobs = int(client.ping().get("workers", 1))

    def run(self, jobs: list[SimJob]) -> list[SimResult]:
        if not jobs:
            return []
        return self.client.run_jobs(jobs)

    def describe(self) -> str:
        return f"service({self.client.socket_path})"


def service_engine(socket_path: str | os.PathLike | None = None,
                   timeout: float | None = None,
                   token: str | None = None):
    """An :class:`~repro.engine.api.Engine` whose batches run on a daemon.

    The local cache is memory-only: persistence and cross-client sharing
    live server-side, while the local layer still short-circuits repeat
    lookups (figure rendering, campaign journal replay) without a socket
    round trip.
    """
    from repro.engine.api import Engine
    from repro.engine.cache import ResultCache

    client = ServiceClient(socket_path, timeout=timeout, token=token)
    return Engine(executor=ServiceExecutor(client), cache=ResultCache(None))
