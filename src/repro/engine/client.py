"""Client side of the simulation service protocol.

A :class:`ServiceClient` speaks the newline-JSON protocol of
:mod:`repro.engine.service` over one persistent Unix-socket connection:
``ping``/``status``/``submit``/``results``/``shutdown`` methods mirror
the server ops one-to-one, and :meth:`ServiceClient.run_jobs` gives the
engine-shaped "batch in, results in submission order out" call.

Two adapters make the service a drop-in **backend** for existing code:

* :class:`ServiceExecutor` quacks like the engine's executors (``run``,
  ``jobs``, ``describe``), so an :class:`~repro.engine.api.Engine` built
  on it routes every batch to the daemon;
* :func:`service_engine` builds exactly that engine (with a memory-only
  local cache), which is what ``repro campaign run --backend service``
  uses — the campaign/checkpoint machinery is unchanged, only the
  executor is remote.

The client is deliberately synchronous (plain ``socket``): callers are
CLI commands, tests and campaign loops, none of which run an event loop.
"""

from __future__ import annotations

import json
import os
import socket
import time
from pathlib import Path

from repro.engine.job import SimJob
from repro.pipeline.result import SimResult


class ServiceError(RuntimeError):
    """The daemon rejected a request or the connection failed."""


class ServiceClient:
    """One connection to a running :class:`~repro.engine.service.SimService`.

    Usable as a context manager; the connection opens lazily on first
    request and pipelines any number of request/response rounds.
    """

    def __init__(self, socket_path: str | os.PathLike | None = None,
                 timeout: float | None = None):
        # Imported here, not at module top, to keep the client importable
        # without dragging in the asyncio server machinery's dependencies.
        from repro.engine.service import default_socket_path

        self.socket_path = default_socket_path(socket_path)
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._file = None

    # -- connection ------------------------------------------------------

    def connect(self) -> None:
        if self._sock is not None:
            return
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            sock.connect(str(self.socket_path))
        except OSError as exc:
            sock.close()
            raise ServiceError(
                f"cannot reach the repro service at {self.socket_path} "
                f"({exc}); is `repro serve` running?"
            ) from None
        self._sock = sock
        self._file = sock.makefile("rwb")

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        self.connect()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def request(self, payload: dict) -> dict:
        """One protocol round; raises :class:`ServiceError` on failure."""
        self.connect()
        try:
            self._file.write((json.dumps(payload) + "\n").encode())
            self._file.flush()
            line = self._file.readline()
        except OSError as exc:
            self.close()
            raise ServiceError(f"service connection lost: {exc}") from None
        if not line:
            self.close()
            raise ServiceError("service closed the connection")
        try:
            response = json.loads(line)
        except ValueError as exc:
            raise ServiceError(f"bad response from service: {exc}") from None
        if not response.get("ok"):
            raise ServiceError(response.get("error", "unknown service error"))
        return response

    # -- ops -------------------------------------------------------------

    def ping(self) -> dict:
        """Server identity: pid, protocol version, worker count.

        Raises :class:`ServiceError` when the daemon speaks a different
        protocol version — better one clean error here than mis-decoded
        payloads later.
        """
        from repro.engine.service import PROTOCOL_VERSION

        server = self.request({"op": "ping"})["server"]
        if server.get("protocol") != PROTOCOL_VERSION:
            raise ServiceError(
                f"service at {self.socket_path} speaks protocol "
                f"v{server.get('protocol')}, this client v{PROTOCOL_VERSION}; "
                "upgrade the older side"
            )
        return server

    def status(self) -> dict:
        """Queue / cache / journal / ticket status snapshot."""
        return self.request({"op": "status"})

    def submit(self, jobs: list[SimJob], *, wait: bool = True) -> dict:
        """Submit a batch; the raw response (``results`` when *wait*)."""
        return self.request({
            "op": "submit",
            "jobs": [job.to_dict() for job in jobs],
            "wait": wait,
        })

    def results(self, ticket: int) -> dict:
        """Poll a ticket from a ``wait=False`` submission."""
        return self.request({"op": "results", "ticket": ticket})

    def shutdown(self) -> None:
        """Ask the daemon to exit (acknowledged before it stops)."""
        self.request({"op": "shutdown"})

    def run_jobs(self, jobs: list[SimJob]) -> list[SimResult]:
        """Submit, wait, and decode: the engine-shaped batch call."""
        response = self.submit(jobs, wait=True)
        return [SimResult.from_dict(raw) for raw in response["results"]]


def service_running(socket_path: str | os.PathLike | None = None) -> bool:
    """True when a daemon answers ``ping`` on *socket_path*."""
    try:
        with ServiceClient(socket_path, timeout=1.0) as client:
            client.ping()
        return True
    except ServiceError:
        return False


def wait_for_service(socket_path: str | os.PathLike | None = None,
                     timeout: float = 10.0) -> None:
    """Block until a daemon answers ``ping`` (for launchers and tests)."""
    deadline = time.monotonic() + timeout
    while True:
        if service_running(socket_path):
            return
        if time.monotonic() >= deadline:
            raise ServiceError(
                f"no repro service appeared at "
                f"{Path(socket_path) if socket_path else 'the default socket'} "
                f"within {timeout:.0f}s"
            )
        time.sleep(0.05)


class ServiceExecutor:
    """Executor backend that ships batches to a running daemon.

    Mirrors the :class:`~repro.engine.executors.SerialExecutor` /
    :class:`~repro.engine.executors.PoolExecutor` interface (``run``,
    ``jobs``, ``describe``) so it can sit inside an ordinary
    :class:`~repro.engine.api.Engine`.  ``jobs`` reports the *daemon's*
    worker count — campaign chunk sizing then matches the real pool.
    """

    def __init__(self, client: ServiceClient):
        self.client = client
        self.jobs = int(client.ping().get("workers", 1))

    def run(self, jobs: list[SimJob]) -> list[SimResult]:
        if not jobs:
            return []
        return self.client.run_jobs(jobs)

    def describe(self) -> str:
        return f"service({self.client.socket_path})"


def service_engine(socket_path: str | os.PathLike | None = None,
                   timeout: float | None = None):
    """An :class:`~repro.engine.api.Engine` whose batches run on a daemon.

    The local cache is memory-only: persistence and cross-client sharing
    live server-side, while the local layer still short-circuits repeat
    lookups (figure rendering, campaign journal replay) without a socket
    round trip.
    """
    from repro.engine.api import Engine
    from repro.engine.cache import ResultCache

    client = ServiceClient(socket_path, timeout=timeout)
    return Engine(executor=ServiceExecutor(client), cache=ResultCache(None))
