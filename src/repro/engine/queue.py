"""Asynchronous job queue on a persistent worker pool (the service core).

The batch engine (:mod:`repro.engine.api`) forks a fresh pool per
``run_jobs`` call; a long-lived daemon cannot afford that, so this module
provides the two pieces the service is built from:

* a :class:`WorkerPool` of **persistent** worker processes, each with a
  private task queue and exactly one in-flight job, so the parent always
  knows which job a worker holds — when a worker dies (OOM, ``SIGKILL``,
  a crashing job) its job is *requeued*, never lost, and a replacement
  worker is spawned;
* an asyncio :class:`JobQueue` that accepts :class:`~repro.engine.job.SimJob`
  batches from any number of concurrent clients and **coalesces** them:
  results already in the shared :class:`~repro.engine.cache.ResultCache`
  resolve immediately, jobs spec-identical to one already in flight
  attach to the same future (one simulation, many waiters), and only
  genuinely new work reaches the pool.  Completed jobs are written to the
  cache and, optionally, to a :class:`~repro.engine.checkpoint.CampaignJournal`
  so a restarted daemon replays instead of re-simulating.

Determinism makes all of this safe: a job spec fully determines its
result, so re-executing a requeued job — even one whose first completion
message raced the worker's death — is bit-identical, and duplicate
completions are simply ignored.

See DESIGN.md, "Service architecture" and docs/architecture.md.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import queue as stdlib_queue
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.engine import faults
from repro.engine.cache import ResultCache
from repro.engine.checkpoint import CampaignJournal
from repro.engine.job import SimJob, execute_job
from repro.engine.shm import (
    NEEDS_GENERATION,
    SharedTraceRegistry,
    adopt_shared_trace,
    prepare_trace,
)
from repro.pipeline.result import SimResult

#: Seconds between watchdog sweeps for dead workers.
WATCHDOG_INTERVAL = 0.1

#: Seconds the drain thread blocks on the result queue per poll.
DRAIN_POLL = 0.2

#: Environment variable bounding the queue depth (admission control);
#: unset/0 means unbounded.  A submit whose *new* jobs would push the
#: outstanding depth past the bound is rejected whole with
#: :class:`QueueOverloaded` (the protocol turns that into an
#: ``overloaded`` response) instead of growing daemon memory without
#: limit under a client stampede.
QUEUE_BOUND_ENV = "REPRO_QUEUE_BOUND"

#: Environment variable with the per-dispatch job timeout in seconds;
#: unset/0 disables it.  A worker that holds one assignment longer than
#: this is killed and replaced, and its job requeued — a wedged worker
#: (or an injected hang) costs one timeout, not the daemon.
JOB_TIMEOUT_ENV = "REPRO_JOB_TIMEOUT"

#: Most times one job is dispatched before the queue gives up on it and
#: fails its future: survives transient worker deaths, converts a
#: permanently hanging/crashing job into a typed error instead of an
#: infinite kill-requeue loop.
MAX_JOB_ATTEMPTS = 3


class JobFailed(RuntimeError):
    """A worker reported an exception while executing a job."""


class QueueClosed(RuntimeError):
    """The queue was stopped while jobs were still outstanding."""


class QueueOverloaded(RuntimeError):
    """Admission control rejected a batch: the queue bound is reached.

    The service maps this to an explicit ``overloaded`` protocol
    response; well-behaved clients back off and retry.
    """


def _positive_env(name: str) -> float | None:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value > 0 else None


def resolve_queue_bound(explicit: int | None = None) -> int | None:
    """The queue-depth bound: explicit value, else ``$REPRO_QUEUE_BOUND``.

    ``None``/``0`` disables admission control (unbounded, the default).
    """
    if explicit is not None:
        return int(explicit) if explicit > 0 else None
    value = _positive_env(QUEUE_BOUND_ENV)
    return int(value) if value else None


def resolve_job_timeout(explicit: float | None = None) -> float | None:
    """The per-dispatch timeout: explicit value, else ``$REPRO_JOB_TIMEOUT``.

    ``None``/``0`` disables the watchdog timeout (the default).
    """
    if explicit is not None:
        return float(explicit) if explicit > 0 else None
    return _positive_env(JOB_TIMEOUT_ENV)


def _mp_context():
    """The ``spawn`` start method, unconditionally.

    The batch :class:`~repro.engine.executors.PoolExecutor` prefers
    ``fork`` (cheap, and its parent is single-threaded at fork time), but
    this pool replaces dead workers from a parent that already runs the
    drain thread and queue feeder threads — ``fork()`` from a
    multi-threaded process is deadlock-prone and deprecated on Python
    3.12+.  Workers are persistent, so the per-spawn interpreter cost is
    paid once per worker lifetime, not per batch.
    """
    return multiprocessing.get_context("spawn")


def _worker_main(worker_id: int, task_q, result_q) -> None:
    """Worker process entry: execute jobs until the ``None`` sentinel.

    Tasks may carry a shared-trace spec (:mod:`repro.engine.shm`): the
    worker adopts the parent-materialised trace into its local cache
    before executing, falling back to a local build on any failure.  Job
    exceptions are reported as ``error`` messages instead of killing the
    worker — a malformed spec must not cost a pool slot.

    Tasks may also carry a fault directive: the *parent* evaluates the
    ``worker.execute`` chaos site at dispatch time (keeping the seeded
    schedule in one process) and the worker merely acts it out — crash
    (``os._exit``), hang, slow-down or a raised error.  The surrounding
    requeue/timeout machinery is exercised exactly as a real failure
    would.
    """
    while True:
        item = task_q.get()
        if item is None:
            return
        task_id, job_dict, trace_spec, fault = item
        try:
            if fault is not None:
                faults.apply_worker_fault(fault)
            if trace_spec is not None:
                adopt_shared_trace(trace_spec)
            payload = execute_job(SimJob.from_dict(job_dict)).to_dict()
        except Exception as exc:  # noqa: BLE001 - forwarded to the parent
            result_q.put(("error", worker_id, task_id,
                          f"{type(exc).__name__}: {exc}"))
        else:
            result_q.put(("done", worker_id, task_id, payload))


class _Worker:
    """One pool slot: a process, its private task queue, its in-flight job.

    The private queue is what makes crash recovery exact: at most one
    task is ever inside a worker, and the parent recorded it in
    :attr:`current` before sending it, so a dead worker's job is known —
    no shared-queue guessing about who picked up what.
    """

    def __init__(self, ctx, worker_id: int, result_q):
        self.id = worker_id
        self.task_q = ctx.Queue()
        # (task_id, job_dict, lease_key): the lease key (or None) names the
        # shared-trace segment this assignment holds a reference on, so
        # whoever clears the assignment also releases the lease.
        self.current: tuple[int, dict, tuple | None] | None = None
        #: Monotonic timestamp of the current assignment (job-timeout
        #: enforcement); ``None`` while idle.
        self.started: float | None = None
        self.process = ctx.Process(
            target=_worker_main,
            args=(worker_id, self.task_q, result_q),
            daemon=True,
        )
        self.process.start()

    @property
    def pid(self) -> int | None:
        return self.process.pid

    def alive(self) -> bool:
        return self.process.is_alive()

    def assign(self, task_id: int, job_dict: dict,
               trace_spec: dict | None = None,
               lease_key: tuple | None = None,
               fault: tuple | None = None) -> None:
        assert self.current is None, "worker already holds a task"
        self.current = (task_id, job_dict, lease_key)
        self.started = time.monotonic()
        self.task_q.put((task_id, job_dict, trace_spec, fault))

    def describe(self) -> dict:
        """Status row for the service ``status`` op."""
        task = None
        if self.current is not None:
            task = SimJob.from_dict(self.current[1]).label()
        return {"id": self.id, "pid": self.pid, "alive": self.alive(),
                "task": task}


class WorkerPool:
    """A fixed-size pool of persistent simulation worker processes.

    Workers survive across batches (no per-run fork cost) and are
    replaced transparently when they die; :meth:`reap_dead` returns the
    orphaned in-flight tasks so the caller can requeue them.
    """

    def __init__(self, workers: int = 1):
        self.size = max(1, int(workers))
        self._ctx = _mp_context()
        self.result_queue = self._ctx.Queue()
        self._workers: list[_Worker] = []
        self._next_id = 0
        self.restarts = 0

    def start(self) -> None:
        """Spawn the worker processes (idempotent)."""
        while len(self._workers) < self.size:
            self._workers.append(self._spawn())

    def _spawn(self) -> _Worker:
        worker = _Worker(self._ctx, self._next_id, self.result_queue)
        self._next_id += 1
        return worker

    def worker(self, worker_id: int) -> _Worker | None:
        for worker in self._workers:
            if worker.id == worker_id:
                return worker
        return None

    def idle_workers(self) -> list[_Worker]:
        return [w for w in self._workers if w.current is None and w.alive()]

    def worker_pids(self) -> list[int]:
        return [w.pid for w in self._workers if w.pid is not None]

    def reap_dead(self) -> list[tuple[int, dict, tuple | None]]:
        """Replace dead workers; return the assignments they were holding
        (``(task_id, job_dict, lease_key)`` — the caller requeues the task
        and releases the shared-trace lease).

        Worker ids are never reused, so a completion message a worker
        managed to send just before dying can still be attributed (and a
        stale one can never be mistaken for the replacement's work).
        """
        orphaned: list[tuple[int, dict, tuple | None]] = []
        for slot, worker in enumerate(self._workers):
            if worker.alive():
                continue
            if worker.current is not None:
                orphaned.append(worker.current)
                worker.current = None
            self._workers[slot] = self._spawn()
            self.restarts += 1
        return orphaned

    def stop(self, timeout: float = 2.0) -> None:
        """Shut every worker down (sentinel, then terminate stragglers)."""
        for worker in self._workers:
            try:
                worker.task_q.put(None)
            except (OSError, ValueError):  # queue already torn down
                pass
        for worker in self._workers:
            worker.process.join(timeout=timeout)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=timeout)
        self._workers.clear()

    def describe(self) -> list[dict]:
        return [worker.describe() for worker in self._workers]


@dataclass
class QueueStats:
    """Lifetime counters of one :class:`JobQueue` (the ``status`` op body)."""

    submitted: int = 0   # jobs received by submit()
    cache_hits: int = 0  # answered straight from the shared result cache
    coalesced: int = 0   # attached to a spec-identical in-flight job
    executed: int = 0    # simulations actually run by the pool
    errors: int = 0      # jobs a worker reported an exception for
    requeued: int = 0    # jobs re-dispatched after their worker died
    rejected: int = 0    # batches refused by admission control
    timeouts: int = 0    # workers killed for exceeding the job timeout
    exhausted: int = 0   # jobs failed after MAX_JOB_ATTEMPTS dispatches
    journal_failures: int = 0  # journal appends that failed (degraded mode)

    def to_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "executed": self.executed,
            "errors": self.errors,
            "requeued": self.requeued,
            "rejected": self.rejected,
            "timeouts": self.timeouts,
            "exhausted": self.exhausted,
            "journal_failures": self.journal_failures,
        }


@dataclass
class _Task:
    """Parent-side record of one enqueued (not yet completed) job."""

    job: SimJob
    key: str
    future: asyncio.Future = field(repr=False)
    #: Dispatches so far: bumped per assignment; at
    #: :data:`MAX_JOB_ATTEMPTS` a requeue becomes a :class:`JobFailed`.
    attempts: int = 0


class JobQueue:
    """Asyncio front half of the service: dedupe, dispatch, recover.

    One instance serves every client connection of a daemon.  All methods
    except the drain thread's internals run on the owning event loop, so
    no locking is needed: completions from worker processes are marshalled
    onto the loop with ``call_soon_threadsafe``.
    """

    def __init__(
        self,
        pool: WorkerPool,
        cache: ResultCache | None = None,
        journal: CampaignJournal | None = None,
        max_depth: int | None = None,
        job_timeout: float | None = None,
    ):
        self.pool = pool
        self.cache = cache if cache is not None else ResultCache(None)
        self.journal = journal
        #: Admission-control bound on outstanding depth (None = unbounded).
        self.max_depth = resolve_queue_bound(max_depth)
        #: Per-dispatch wall-clock budget (None = no timeout).
        self.job_timeout = resolve_job_timeout(job_timeout)
        self.stats = QueueStats()
        #: Optional completion hook ``(job, result) -> None``, invoked on
        #: the event loop after a simulation completes (not for cache
        #: hits or coalesced attachments).  The service's warm-push path
        #: hangs off this; exceptions are swallowed — no observer may
        #: break completion delivery.
        self.on_complete = None
        # Shared-memory trace plane: the daemon materialises each unique
        # trace once and leases read-only segments to worker assignments
        # (disabled or failing, workers just build locally).  Generator
        # runs happen off the event loop: tasks whose trace needs building
        # wait in _pending while a thread prepares it (_preparing keys).
        self.traces = SharedTraceRegistry()
        self._preparing: set[tuple] = set()
        self._prepare_failed: set[tuple] = set()
        self._tasks: dict[int, _Task] = {}
        self._inflight: dict[str, int] = {}   # content key -> task id
        self._pending: deque[int] = deque()
        self._next_task = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._drain: threading.Thread | None = None
        self._watchdog: asyncio.Task | None = None
        self._stopping = False

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Start the pool, the result drain thread and the watchdog."""
        self._loop = asyncio.get_running_loop()
        self.pool.start()
        self._drain = threading.Thread(target=self._drain_loop, daemon=True,
                                       name="jobqueue-drain")
        self._drain.start()
        self._watchdog = asyncio.get_running_loop().create_task(self._watch())

    async def stop(self) -> None:
        """Stop the pool; outstanding futures fail with :class:`QueueClosed`."""
        self._stopping = True
        if self._watchdog is not None:
            self._watchdog.cancel()
            try:
                await self._watchdog
            except asyncio.CancelledError:
                pass
            self._watchdog = None
        self.pool.stop()
        self.traces.close()
        if self._drain is not None:
            self._drain.join(timeout=2 * DRAIN_POLL + 1.0)
            self._drain = None
        for task in self._tasks.values():
            if not task.future.done():
                task.future.set_exception(
                    QueueClosed("job queue stopped before the job completed")
                )
        self._tasks.clear()
        self._inflight.clear()
        self._pending.clear()

    # -- submission ------------------------------------------------------

    def submit(self, jobs: list[SimJob]) -> tuple[list[asyncio.Future], dict]:
        """Enqueue a batch; returns one future per job, in submission order.

        The summary dict says how this batch was satisfied — ``cache_hits``
        (answered immediately), ``coalesced`` (attached to in-flight work,
        possibly another client's), ``enqueued`` (new simulations) — which
        is what the round-trip tests use to prove cross-client sharing.

        Admission control: with :attr:`max_depth` set, a batch whose
        genuinely *new* jobs (cache hits and coalesced jobs are free —
        they add no work) would push the outstanding depth past the bound
        raises :class:`QueueOverloaded` **before mutating any state**, so
        a rejected batch leaves no half-enqueued residue and the client
        can retry the whole thing after backing off.
        """
        assert self._loop is not None, "start() the queue before submitting"
        # Phase 1: classify without mutating, so the batch can be rejected
        # atomically.  Cache stats are counted here (the single cache.get
        # per job); phase 2 reuses the classification.
        plan: list[tuple[str, object]] = []
        new_keys: set[str] = set()
        for job in jobs:
            cached = self.cache.get(job)
            if cached is not None:
                plan.append(("hit", cached))
                continue
            key = job.content_key()
            if key in self._inflight or key in new_keys:
                plan.append(("coalesce", key))
            else:
                new_keys.add(key)
                plan.append(("new", key))
        if self.max_depth is not None \
                and self.depth + len(new_keys) > self.max_depth:
            self.stats.rejected += 1
            raise QueueOverloaded(
                f"queue depth {self.depth} + {len(new_keys)} new jobs "
                f"exceeds the bound of {self.max_depth}; retry after "
                "backoff"
            )
        # Phase 2: commit.  Intra-batch duplicates coalesce onto the task
        # their first occurrence created (phase 1 marked them "coalesce").
        futures: list[asyncio.Future] = []
        summary = {"jobs": len(jobs), "cache_hits": 0, "coalesced": 0,
                   "enqueued": 0}
        for job, (kind, value) in zip(jobs, plan):
            self.stats.submitted += 1
            if kind == "hit":
                future = self._loop.create_future()
                future.set_result(value)
                self.stats.cache_hits += 1
                summary["cache_hits"] += 1
                futures.append(future)
                continue
            key = value
            task_id = self._inflight.get(key)
            if task_id is not None:
                self.stats.coalesced += 1
                summary["coalesced"] += 1
                futures.append(self._tasks[task_id].future)
                continue
            task_id = self._next_task
            self._next_task += 1
            task = _Task(job=job, key=key, future=self._loop.create_future())
            self._tasks[task_id] = task
            self._inflight[key] = task_id
            self._pending.append(task_id)
            summary["enqueued"] += 1
            futures.append(task.future)
        self._feed()
        return futures, summary

    async def run_jobs(self, jobs: list[SimJob]) -> list[SimResult]:
        """Submit and await one batch (results in submission order)."""
        futures, _ = self.submit(jobs)
        return list(await asyncio.gather(*futures))

    @property
    def depth(self) -> int:
        """Jobs enqueued or in flight (not yet completed)."""
        return len(self._tasks)

    def describe(self) -> dict:
        return {
            "workers": self.pool.describe(),
            "depth": self.depth,
            "pending": len(self._pending),
            "max_depth": self.max_depth,
            "job_timeout": self.job_timeout,
            "restarts": self.pool.restarts,
            "stats": self.stats.to_dict(),
            "traces": self.traces.stats(),
        }

    def health(self) -> dict:
        """Liveness and degradation snapshot (the service ``health`` op).

        ``degraded`` flags are lifetime counters of failures the daemon
        absorbed instead of dying: journal appends that failed (results
        still served from cache), cache persists that failed (results
        still in memory), shared-memory materialisations that fell back
        to local rebuilds.  ``degraded_mode`` is their disjunction — the
        "keep serving, but look at me" signal for operators.
        """
        workers = self.pool.describe()
        alive = sum(1 for w in workers if w["alive"])
        busy = sum(1 for w in workers if w["task"] is not None)
        degraded = {
            "journal_failures": self.stats.journal_failures,
            "cache_write_failures": self.cache.write_failures,
            "shm_failures": self.traces.failures,
        }
        return {
            "ok": alive > 0,
            "workers": {"total": len(workers), "alive": alive, "busy": busy},
            "depth": self.depth,
            "pending": len(self._pending),
            "max_depth": self.max_depth,
            "job_timeout": self.job_timeout,
            "restarts": self.pool.restarts,
            "rejected": self.stats.rejected,
            "timeouts": self.stats.timeouts,
            "degraded": degraded,
            "degraded_mode": any(v for v in degraded.values()),
        }

    # -- dispatch / completion ------------------------------------------

    def _feed(self) -> None:
        """Hand pending tasks to idle workers (FIFO).

        Each assignment leases the job's trace from the shared-memory
        plane; the lease is released when the assignment clears —
        completion, error or worker death.  Leases that would require a
        *generator run* are not served on the event loop: the task is
        deferred (keeping its queue position) while :func:`prepare_trace`
        builds the trace on the default thread-pool executor, and the
        completion callback seeds the cache and re-feeds.  The loop — and
        every other client's ping/submit/status — stays responsive while
        cold traces build.
        """
        idle = self.pool.idle_workers()
        deferred: list[int] = []
        while self._pending and idle:
            task_id = self._pending.popleft()
            task = self._tasks.get(task_id)
            if task is None or task.future.done():
                # Resolved while queued (stale completion after a requeue).
                continue
            job = task.job
            leased = self.traces.lease(job.workload,
                                       job.warmup + job.n_uops, job.seed,
                                       generate=False)
            if leased is NEEDS_GENERATION:
                ident = self._job_ident(job)
                if ident is not None and ident not in self._prepare_failed:
                    self._start_prepare(ident)
                    deferred.append(task_id)
                    continue
                leased = None  # preparation failed before: dispatch bare
            lease_key, spec = leased if leased is not None else (None, None)
            task.attempts += 1
            # Chaos: the parent evaluates the worker.execute site here so
            # the seeded hit counter lives in exactly one process; the
            # worker just acts the directive out (crash/hang/slow/error).
            rule = faults.fire("worker.execute")
            fault = None if rule is None else \
                {"action": rule.action, "arg": rule.arg}
            idle.pop().assign(task_id, job.to_dict(), spec, lease_key, fault)
        for task_id in reversed(deferred):
            self._pending.appendleft(task_id)

    @staticmethod
    def _job_ident(job: SimJob) -> tuple | None:
        """The trace identity a job simulates, or ``None`` if unknowable."""
        from repro.workloads.catalog import resolve_seed

        try:
            return (job.workload, job.warmup + job.n_uops,
                    resolve_seed(job.workload, job.seed))
        except KeyError:
            return None

    def _start_prepare(self, ident: tuple) -> None:
        """Build one trace identity on the thread-pool executor (once)."""
        from repro.workloads.catalog import seed_trace

        if ident in self._preparing:
            return
        self._preparing.add(ident)

        def _done(future) -> None:
            # Runs on the event loop: installing into the catalog cache
            # (and re-feeding) stays single-threaded.
            self._preparing.discard(ident)
            trace = None if future.cancelled() else future.result()
            if trace is not None:
                seed_trace(ident[0], ident[1], ident[2], trace)
            else:
                # prepare_trace swallowed the real error; the bare
                # dispatch below lets the worker raise it properly.
                self.traces.failures += 1
                self._prepare_failed.add(ident)
            if not self._stopping:
                self._feed()

        # run_in_executor returns an asyncio.Future: done callbacks are
        # already marshalled onto the loop.
        self._loop.run_in_executor(
            None, prepare_trace, ident[0], ident[1], ident[2]
        ).add_done_callback(_done)

    def _drain_loop(self) -> None:
        """Forward worker completions onto the event loop (thread body)."""
        while not self._stopping:
            try:
                message = self.pool.result_queue.get(timeout=DRAIN_POLL)
            except stdlib_queue.Empty:
                continue
            except Exception:  # noqa: BLE001 - e.g. a torn pickle left by a
                # worker killed mid-write; the watchdog requeues that
                # worker's job, so the damaged message is droppable — but
                # the drain thread itself must survive, or no completion
                # would ever reach the loop again.
                continue
            try:
                self._loop.call_soon_threadsafe(self._on_message, message)
            except RuntimeError:  # loop already closed: shutting down
                return

    def _on_message(self, message: tuple) -> None:
        # Runs on the event loop.  The cache/journal writes below are
        # synchronous (the journal fsyncs) — a deliberate tradeoff: the
        # write must be durable *before* the future resolves, and the
        # rate is bounded by the worker pool (one small write per
        # completed multi-millisecond simulation), so the loop stall is
        # noise next to simulation time.
        kind, worker_id, task_id, payload = message
        worker = self.pool.worker(worker_id)
        if worker is not None and worker.current is not None \
                and worker.current[0] == task_id:
            lease_key = worker.current[2]
            worker.current = None
            worker.started = None
            if lease_key is not None:
                self.traces.release(lease_key)
        task = self._tasks.pop(task_id, None)
        if task is None:
            # Duplicate completion: the job finished once on a worker that
            # then died and once more after the requeue.  Determinism makes
            # the copies identical; drop the straggler.
            self._feed()
            return
        self._inflight.pop(task.key, None)
        if kind == "done":
            result = SimResult.from_dict(payload)
            self.cache.put(task.job, result)
            if self.journal is not None:
                # A failed append degrades instead of killing the daemon:
                # the result is already in the cache layer and the future
                # below must resolve either way (an exception here would
                # orphan every waiter).  Journaling stops entirely after
                # the first failure — the append may have left a torn
                # half-record, and writing *after* it would fuse two
                # records into one corrupt line; leaving the tear at EOF
                # lets the next startup's loader truncate it cleanly.
                # health() surfaces the count as a degraded-mode flag.
                try:
                    self.journal.record(task.job, result)
                except OSError:
                    self.stats.journal_failures += 1
                    try:
                        self.journal.close()
                    except OSError:
                        pass
                    self.journal = None
            self.stats.executed += 1
            if self.on_complete is not None:
                try:
                    self.on_complete(task.job, result)
                except Exception:  # noqa: BLE001 - observers never break
                    pass           # completion delivery
            if not task.future.done():
                task.future.set_result(result)
        else:
            self.stats.errors += 1
            if not task.future.done():
                task.future.set_exception(JobFailed(payload))
        self._feed()

    async def _watch(self) -> None:
        """Requeue jobs orphaned by worker deaths; spawn replacements.

        A dead worker's shared-trace lease is released here — the segment
        usually stays resident (idle LRU) so the respawned assignment's
        re-lease is a pure reuse, not a rebuild.

        With :attr:`job_timeout` set, a worker holding one assignment past
        the budget is killed here (``SIGKILL``: a wedged worker won't run
        a signal handler) and reaped as dead on the same sweep, so the
        hang costs one timeout instead of wedging a pool slot forever.
        Requeues are bounded: a job on its :data:`MAX_JOB_ATTEMPTS`-th
        failed dispatch fails its future with :class:`JobFailed` instead
        of being requeued, converting a deterministic crash/hang into a
        typed error rather than an infinite kill-respawn loop.
        """
        while True:
            await asyncio.sleep(WATCHDOG_INTERVAL)
            if self.job_timeout is not None:
                now = time.monotonic()
                for worker in list(self.pool._workers):
                    if (
                        worker.current is not None
                        and worker.started is not None
                        and now - worker.started > self.job_timeout
                        and worker.alive()
                    ):
                        self.stats.timeouts += 1
                        worker.process.kill()
                        worker.process.join(timeout=1.0)
            orphaned = self.pool.reap_dead()
            for task_id, _job_dict, lease_key in orphaned:
                if lease_key is not None:
                    self.traces.release(lease_key)
                task = self._tasks.get(task_id)
                if task is None:
                    continue
                if task.attempts >= MAX_JOB_ATTEMPTS:
                    self.stats.exhausted += 1
                    self._tasks.pop(task_id, None)
                    self._inflight.pop(task.key, None)
                    if not task.future.done():
                        task.future.set_exception(JobFailed(
                            f"job {task.job.label()} lost its worker "
                            f"{task.attempts} times (crash or timeout); "
                            "giving up"
                        ))
                    continue
                self.stats.requeued += 1
                self._pending.appendleft(task_id)
            if orphaned:
                self._feed()
