"""Declarative simulation job specs.

A :class:`SimJob` is the unit of work of the experiment engine: a frozen,
hashable description of *one* simulation — workload, predictor name and
knobs, core configuration and slice sizes — with a deterministic content
key.  Jobs carry no live objects (the predictor and trace are materialised
by :func:`execute_job`), so they pickle cheaply across process boundaries
and key both the in-process and the on-disk result caches.

See DESIGN.md, "Experiment engine" for the job/executor/cache split.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, replace

from repro.pipeline.config import CoreConfig, RecoveryMode
from repro.pipeline.result import SimResult

#: Default slice sizes.  The paper warms 50 M µops and measures 50 M; a
#: pure-Python cycle model scales that down (DESIGN.md, "Scaling defaults").
DEFAULT_WARMUP = 12_000
DEFAULT_MEASURE = 36_000

#: Bump when job semantics change in a way that invalidates cached results.
JOB_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class SimJob:
    """One simulation, described by value.

    ``config_json`` is the canonical JSON of a :class:`CoreConfig` (or
    ``None`` for "default config with *recovery*") so that the job stays
    hashable; use :meth:`make` to build jobs from a live config object and
    :meth:`core_config` to get one back.
    """

    workload: str
    predictor: str = "none"
    fpc: bool = True
    recovery: str = "squash"
    entries: int = 8192
    n_uops: int = DEFAULT_MEASURE
    warmup: int = DEFAULT_WARMUP
    seed: int | None = None          # None = the workload's catalog seed
    config_json: str | None = None   # None = CoreConfig(recovery=recovery)

    @classmethod
    def make(
        cls,
        workload: str,
        predictor: str = "none",
        *,
        fpc: bool = True,
        recovery: str = "squash",
        entries: int = 8192,
        n_uops: int = DEFAULT_MEASURE,
        warmup: int = DEFAULT_WARMUP,
        seed: int | None = None,
        config: CoreConfig | None = None,
    ) -> "SimJob":
        """Build a job, serialising an optional live :class:`CoreConfig`.

        A *config* equal to the recovery-default one is normalised to
        ``None`` so that spec-identical jobs share one content key (and
        hence one cache entry) however the caller spelled them.
        """
        if config is not None:
            default = CoreConfig(
                recovery=RecoveryMode.SELECTIVE_REISSUE
                if recovery == "reissue"
                else RecoveryMode.SQUASH_COMMIT
            )
            if config == default:
                config = None
        return cls(
            workload=workload,
            predictor=predictor,
            fpc=fpc,
            recovery=recovery,
            entries=entries,
            n_uops=n_uops,
            warmup=warmup,
            seed=seed,
            config_json=config.canonical_json() if config is not None else None,
        )

    def with_predictor(self, predictor: str) -> "SimJob":
        return replace(self, predictor=predictor)

    def core_config(self) -> CoreConfig:
        """Materialise the core configuration this job runs under."""
        if self.config_json is None:
            return CoreConfig(
                recovery=RecoveryMode.SELECTIVE_REISSUE
                if self.recovery == "reissue"
                else RecoveryMode.SQUASH_COMMIT
            )
        return CoreConfig.from_dict(json.loads(self.config_json))

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SimJob":
        return cls(**data)

    def canonical_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def content_key(self) -> str:
        """Stable digest of the full spec; the cache key for this job.

        Includes every field plus :data:`JOB_SCHEMA_VERSION`, so cached
        results survive process restarts but not semantic changes.
        """
        payload = f"v{JOB_SCHEMA_VERSION}:{self.canonical_json()}"
        return hashlib.sha256(payload.encode()).hexdigest()

    def label(self) -> str:  # pragma: no cover - convenience
        conf = "fpc" if self.fpc else "3bit"
        return f"{self.workload}/{self.predictor}/{conf}/{self.recovery}"


# Process-local count of simulations actually executed (cache misses).
# Pool-executor runs count in the *worker* processes; tests asserting
# cache short-circuits therefore use the serial executor.
_RUN_COUNT = 0


def run_count() -> int:
    """Simulations executed in this process so far (cache misses only)."""
    return _RUN_COUNT


def reset_run_count() -> None:
    """Zero :func:`run_count` (test isolation)."""
    global _RUN_COUNT
    _RUN_COUNT = 0


def execute_job(job: SimJob) -> SimResult:
    """Materialise and run one job on a fresh core.

    Deterministic: the trace build, predictor construction and cycle model
    are all seeded by the job spec alone, so any executor backend produces
    bit-identical results.  Traces come from the shared in-process cache in
    :mod:`repro.workloads.catalog`, so repeated slices of the same workload
    are built once per process.
    """
    # Imported lazily: runner (predictor construction) sits on top of the
    # engine API, so a module-level import would be circular.
    from repro.experiments.runner import make_predictor
    from repro.pipeline.core import simulate
    from repro.workloads.catalog import build_trace

    global _RUN_COUNT
    _RUN_COUNT += 1
    trace = build_trace(job.workload, job.warmup + job.n_uops, seed=job.seed)
    predictor = make_predictor(job.predictor, fpc=job.fpc,
                               recovery=job.recovery, entries=job.entries)
    return simulate(trace, predictor, config=job.core_config(),
                    warmup=job.warmup, workload=job.workload)
