"""Legacy setup shim.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 660 editable installs (``pip install -e .`` via build_editable) fail
with "invalid command 'bdist_wheel'".  This shim lets the legacy code path
(``pip install -e . --no-use-pep517 --no-build-isolation`` or
``python setup.py develop``) work; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
